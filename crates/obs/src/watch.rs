//! The live-tail loop: wires [`JsonlTail`] followers into a
//! [`DashState`] and paints frames — interactively on a real terminal,
//! or headlessly for CI.
//!
//! Three modes share one ingestion path:
//!
//! * **once** — poll every tail once, render at the auto-fitted height
//!   (every cell gets a table row), print the plain-text frame, exit.
//!   This is how CI asserts on a finished run's store.
//! * **until-done** — poll in a loop until the grid reports complete,
//!   then print the final plain-text frame. This is how CI live-tails a
//!   sweep running in a background process without a TTY.
//! * **live** (default) — raw-mode alternate-screen TUI with `q`/`j`/
//!   `k`/`Enter` keys, double-buffered diff repaints, exits when the
//!   user quits.
//!
//! Raw mode is borrowed from `stty(1)` rather than a C binding: `stty
//! -icanon -echo min 0 time 0` makes `read(2)` on the TTY non-blocking
//! (it returns 0 bytes when no key is pending), and the original
//! settings — saved with `stty -g` — are restored on drop, even on
//! panic.

use std::fs::File;
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use cata_core::exp::{ExpError, JsonlTail};

use crate::dash::{render, required_height};
use crate::state::DashState;

/// What to tail and how to present it.
#[derive(Debug, Clone, Default)]
pub struct WatchConfig {
    /// Results-store files (`cata-results/v1`) to follow.
    pub stores: Vec<PathBuf>,
    /// Progress sidecars (`cata-progress/v1`) to follow.
    pub progress: Vec<PathBuf>,
    /// Perf trajectory (`cata-perf-point/v1`) to follow.
    pub trajectory: Option<PathBuf>,
    /// Poll interval between tail sweeps.
    pub interval_ms: u64,
    /// Headless: render one frame and exit.
    pub once: bool,
    /// Headless: poll until the grid completes, print the final frame.
    pub until_done: bool,
    /// Give up on `until_done` after this many seconds.
    pub timeout_s: Option<u64>,
    /// Frame width override (defaults to the terminal, or 100 headless).
    pub width: Option<usize>,
    /// Frame height override (defaults to the terminal, or auto-fit
    /// headless).
    pub height: Option<usize>,
}

/// All tails plus the state they fold into.
struct Follower {
    stores: Vec<JsonlTail>,
    progress: Vec<JsonlTail>,
    trajectory: Option<JsonlTail>,
    state: DashState,
}

impl Follower {
    fn new(cfg: &WatchConfig) -> Self {
        Follower {
            stores: cfg.stores.iter().map(JsonlTail::new).collect(),
            progress: cfg.progress.iter().map(JsonlTail::new).collect(),
            trajectory: cfg.trajectory.as_ref().map(JsonlTail::new),
            state: DashState::new(),
        }
    }

    /// One sweep over every tail; returns whether anything new arrived.
    fn poll(&mut self) -> Result<bool, ExpError> {
        let mut fresh = false;
        for t in &mut self.stores {
            for line in t.poll()? {
                self.state.ingest_store_line(&line);
                fresh = true;
            }
        }
        for t in &mut self.progress {
            for line in t.poll()? {
                self.state.ingest_progress_line(&line);
                fresh = true;
            }
        }
        if let Some(t) = &mut self.trajectory {
            for line in t.poll()? {
                self.state.ingest_trajectory_line(&line);
                fresh = true;
            }
        }
        Ok(fresh)
    }
}

/// Runs the watch in the mode the config selects. Returns the final
/// state (tests and callers inspect it); errors are I/O problems on the
/// tailed files or the TTY.
pub fn run_watch(cfg: &WatchConfig) -> Result<DashState, ExpError> {
    if cfg.once || cfg.until_done {
        headless(cfg)
    } else {
        live(cfg)
    }
}

fn headless(cfg: &WatchConfig) -> Result<DashState, ExpError> {
    let mut fo = Follower::new(cfg);
    let deadline = cfg
        .timeout_s
        .map(|s| Instant::now() + Duration::from_secs(s));
    loop {
        fo.poll()?;
        if cfg.once || fo.state.complete() {
            break;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err(ExpError::Store(format!(
                    "watch --until-done: grid still at {}/{} after {}s",
                    fo.state.grid_done(),
                    fo.state.grid_total(),
                    cfg.timeout_s.unwrap_or(0),
                )));
            }
        }
        std::thread::sleep(Duration::from_millis(cfg.interval_ms.max(10)));
    }
    let w = cfg.width.unwrap_or(100);
    let h = cfg.height.unwrap_or_else(|| required_height(&fo.state, w));
    let frame = render(&fo.state, w, h);
    let mut out = std::io::stdout().lock();
    out.write_all(frame.to_text().as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| ExpError::Store(format!("stdout: {e}")))?;
    Ok(fo.state)
}

/// Restores the terminal on drop: cooked mode, main screen, cursor.
struct TermGuard {
    saved: String,
}

impl TermGuard {
    fn enter() -> Result<TermGuard, ExpError> {
        let saved = stty(&["-g"])?.trim().to_string();
        stty(&["-icanon", "-echo", "min", "0", "time", "0"])?;
        print!("\x1b[?1049h\x1b[?25l\x1b[2J");
        let _ = std::io::stdout().flush();
        Ok(TermGuard { saved })
    }
}

impl Drop for TermGuard {
    fn drop(&mut self) {
        print!("\x1b[?25h\x1b[?1049l");
        let _ = std::io::stdout().flush();
        let _ = stty(&[&self.saved]);
    }
}

/// Runs `stty` against the controlling terminal and returns its stdout.
fn stty(args: &[&str]) -> Result<String, ExpError> {
    let tty = File::open("/dev/tty")
        .map_err(|e| ExpError::Store(format!("/dev/tty: {e} (use --once off-terminal)")))?;
    let out = Command::new("stty")
        .args(args)
        .stdin(tty)
        .output()
        .map_err(|e| ExpError::Store(format!("stty: {e}")))?;
    if !out.status.success() {
        return Err(ExpError::Store(format!(
            "stty {args:?}: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        )));
    }
    Ok(String::from_utf8_lossy(&out.stdout).into_owned())
}

/// The terminal's `(width, height)` per `stty size`.
fn term_size() -> (usize, usize) {
    if let Ok(s) = stty(&["size"]) {
        let mut it = s.split_whitespace();
        if let (Some(r), Some(c)) = (it.next(), it.next()) {
            if let (Ok(r), Ok(c)) = (r.parse(), c.parse()) {
                return (c, r);
            }
        }
    }
    (100, 30)
}

fn live(cfg: &WatchConfig) -> Result<DashState, ExpError> {
    let mut fo = Follower::new(cfg);
    let guard = TermGuard::enter()?;
    let mut tty = File::open("/dev/tty").map_err(|e| ExpError::Store(format!("/dev/tty: {e}")))?;
    let mut prev: Option<crate::frame::Frame> = None;
    let mut out = std::io::stdout();
    loop {
        fo.poll()?;
        let (tw, th) = term_size();
        let w = cfg.width.unwrap_or(tw);
        let h = cfg.height.unwrap_or(th);
        let frame = render(&fo.state, w, h);
        let paint = match &prev {
            Some(p) => frame.diff_ansi(p),
            None => frame.to_ansi(),
        };
        if !paint.is_empty() {
            out.write_all(paint.as_bytes())
                .and_then(|()| out.flush())
                .map_err(|e| ExpError::Store(format!("stdout: {e}")))?;
        }
        prev = Some(frame);

        // Drain pending keys; min 0 time 0 makes this non-blocking.
        let mut buf = [0u8; 64];
        let n = tty.read(&mut buf).unwrap_or(0);
        for &b in &buf[..n] {
            match b {
                b'q' | 0x03 => {
                    drop(guard);
                    return Ok(fo.state);
                }
                b'j' => fo.state.move_selection(1),
                b'k' => fo.state.move_selection(-1),
                b'\r' | b'\n' => fo.state.show_detail = !fo.state.show_detail,
                _ => {}
            }
        }
        std::thread::sleep(Duration::from_millis(cfg.interval_ms.max(16)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_core::exp::{ProgressEvent, ProgressWriter};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cata-obs-watch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn once_mode_renders_headlessly_from_files() {
        let dir = tmpdir("once");
        let progress = dir.join("s.progress.jsonl");
        let w = ProgressWriter::open(&progress, 0).unwrap();
        w.emit(ProgressEvent::GridProgress { done: 0, total: 1 })
            .unwrap();
        w.emit(ProgressEvent::CellStart {
            index: 0,
            name: "solo".into(),
            spec_digest: "d".into(),
        })
        .unwrap();
        w.emit(ProgressEvent::CellFinish {
            index: 0,
            cell: "solo@1/f1".into(),
            ok: true,
            wall_s: 0.25,
        })
        .unwrap();
        w.emit(ProgressEvent::GridProgress { done: 1, total: 1 })
            .unwrap();

        let cfg = WatchConfig {
            progress: vec![progress],
            once: true,
            interval_ms: 10,
            ..WatchConfig::default()
        };
        let state = run_watch(&cfg).unwrap();
        assert!(state.complete());
        assert_eq!(state.cells[&0].key, "solo@1/f1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn until_done_waits_for_a_writer_that_finishes_later() {
        let dir = tmpdir("until");
        let progress = dir.join("s.progress.jsonl");
        let w = ProgressWriter::open(&progress, 0).unwrap();
        w.emit(ProgressEvent::GridProgress { done: 0, total: 1 })
            .unwrap();

        let p2 = progress.clone();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(80));
            let w = ProgressWriter::open(&p2, 0).unwrap();
            w.emit(ProgressEvent::CellFinish {
                index: 0,
                cell: "late@1/f1".into(),
                ok: true,
                wall_s: 0.1,
            })
            .unwrap();
            w.emit(ProgressEvent::GridProgress { done: 1, total: 1 })
                .unwrap();
        });

        let cfg = WatchConfig {
            progress: vec![progress],
            until_done: true,
            timeout_s: Some(30),
            interval_ms: 10,
            ..WatchConfig::default()
        };
        let state = run_watch(&cfg).unwrap();
        writer.join().unwrap();
        assert!(state.complete());
        assert_eq!(state.cells[&0].key, "late@1/f1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn until_done_times_out_when_the_grid_never_completes() {
        let dir = tmpdir("timeout");
        let progress = dir.join("s.progress.jsonl");
        let w = ProgressWriter::open(&progress, 0).unwrap();
        w.emit(ProgressEvent::GridProgress { done: 0, total: 5 })
            .unwrap();
        let cfg = WatchConfig {
            progress: vec![progress],
            until_done: true,
            timeout_s: Some(0),
            interval_ms: 10,
            ..WatchConfig::default()
        };
        let err = run_watch(&cfg).unwrap_err();
        assert!(format!("{err}").contains("0/5"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_lines_are_held_back_until_completed() {
        let dir = tmpdir("torn");
        let progress = dir.join("s.progress.jsonl");
        // A full line plus a torn fragment (writer killed mid-record).
        let full = r#"{"schema":"cata-progress/v1","shard":0,"unix_ms":1,"kind":"grid","done":1,"total":2}"#;
        let mut f = std::fs::File::create(&progress).unwrap();
        write!(f, "{full}\n{{\"schema\":\"cata-prog").unwrap();
        f.flush().unwrap();

        let cfg = WatchConfig {
            progress: vec![progress.clone()],
            once: true,
            interval_ms: 10,
            ..WatchConfig::default()
        };
        let state = run_watch(&cfg).unwrap();
        assert_eq!(state.parse_errors, 0, "fragment must not be parsed");
        assert_eq!(state.grid_done(), 1);

        // The resumed writer completes the record; a fresh watch sees it.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&progress)
            .unwrap();
        writeln!(
            f,
            "ress/v1\",\"shard\":0,\"unix_ms\":2,\"kind\":\"grid\",\"done\":2,\"total\":2}}"
        )
        .unwrap();
        let state = run_watch(&cfg).unwrap();
        assert_eq!(state.parse_errors, 0);
        assert!(state.complete());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
