//! Property tests for the DES substrate: clock arithmetic, event ordering,
//! timeline coverage and the progress model.

use cata_sim::activity::{Activity, ActivityTimeline};
use cata_sim::event::{EventBackend, EventQueue};
use cata_sim::machine::{CoreId, Machine, MachineConfig, PowerLevel};
use cata_sim::progress::{ExecProfile, RunningTask};
use cata_sim::time::{Frequency, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue is a stable priority queue: pops are sorted by time,
    /// and equal-time events preserve push order.
    #[test]
    fn event_queue_is_stable_and_sorted(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ns(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// The heap and calendar-wheel backends pop bit-identical orders —
    /// same times, same payloads, including same-time FIFO ties — over
    /// random all-push-then-all-pop schedules. Pop order is a total order
    /// over (time, insertion seq), so any correct backend must agree
    /// element for element; this is what makes the backend a pure speed
    /// knob (simulation digests cannot depend on it).
    #[test]
    fn backends_pop_identical_orders(times in prop::collection::vec(0u64..500, 1..300)) {
        let mut heap = EventQueue::with_backend(EventBackend::Heap);
        let mut wheel = EventQueue::with_backend(EventBackend::CalendarWheel);
        for (i, &t) in times.iter().enumerate() {
            // A narrow time range forces plenty of exact ties.
            heap.push(SimTime::from_ns(t), i);
            wheel.push(SimTime::from_ns(t), i);
        }
        loop {
            let (h, w) = (heap.pop(), wheel.pop());
            prop_assert_eq!(h, w, "backends diverged");
            if h.is_none() {
                break;
            }
        }
    }

    /// Backend bit-identity under *interleaved* pushes and pops, with
    /// at-now ties, small advances and far-future jumps — the adversarial
    /// stream for the wheel's width retuning and ring resizing. Both
    /// backends see the identical operation sequence and must agree after
    /// every single pop, not just in aggregate.
    #[test]
    fn backends_match_under_interleaving(
        ops in prop::collection::vec((0u64..1u64 << 34, 0u32..4), 1..400),
    ) {
        let mut heap = EventQueue::with_backend(EventBackend::Heap);
        let mut wheel = EventQueue::with_backend(EventBackend::CalendarWheel);
        let mut seq = 0usize;
        for &(advance, kind) in &ops {
            match kind {
                // Push at the current clock (exact tie with the last pop).
                0 => {
                    heap.push(heap.now(), seq);
                    wheel.push(wheel.now(), seq);
                    seq += 1;
                }
                // Push ahead by `advance` ps (0 → tie; huge → bucket wrap).
                1 | 2 => {
                    let at = heap.now() + SimDuration::from_ps(advance);
                    heap.push(at, seq);
                    wheel.push(at, seq);
                    seq += 1;
                }
                // Pop and compare.
                _ => {
                    prop_assert_eq!(heap.peek_time(), wheel.peek_time());
                    prop_assert_eq!(heap.pop(), wheel.pop(), "pop diverged");
                }
            }
            prop_assert_eq!(heap.len(), wheel.len());
        }
        // Drain: the full remaining order must match.
        loop {
            let (h, w) = (heap.pop(), wheel.pop());
            prop_assert_eq!(h, w, "drain diverged");
            if h.is_none() {
                break;
            }
        }
    }

    /// Duration addition is associative and commutative under saturation
    /// (all realistic magnitudes).
    #[test]
    fn duration_algebra(a in 0u64..1u64<<40, b in 0u64..1u64<<40, c in 0u64..1u64<<40) {
        let (da, db, dc) = (
            SimDuration::from_ps(a),
            SimDuration::from_ps(b),
            SimDuration::from_ps(c),
        );
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db) + dc, da + (db + dc));
        prop_assert_eq!((SimTime::ZERO + da + db).since(SimTime::ZERO), da + db);
    }

    /// A task's duration at a higher frequency is never longer, and the
    /// memory component is invariant.
    #[test]
    fn duration_monotone_in_frequency(
        cycles in 0u64..1u64<<40,
        mem in 0u64..1u64<<40,
        f1 in 1u32..4000,
        f2 in 1u32..4000,
    ) {
        let p = ExecProfile::new(cycles, mem);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let slow = p.duration_at(Frequency::from_mhz(lo));
        let fast = p.duration_at(Frequency::from_mhz(hi));
        prop_assert!(fast <= slow);
        prop_assert!(fast >= SimDuration::from_ps(mem));
    }

    /// A run with any single mid-task frequency change finishes at exactly
    /// the analytic time: t_switch + (1 - p) * duration(f2).
    #[test]
    fn single_switch_finish_time_is_analytic(
        cycles in 1_000u64..100_000_000,
        switch_fraction in 0.01f64..0.99,
    ) {
        let f1 = Frequency::from_ghz(1);
        let f2 = Frequency::from_ghz(2);
        let p = ExecProfile::new(cycles, 0);
        let d1 = p.duration_at(f1);
        let switch_at = SimTime::ZERO + d1.mul_f64(switch_fraction);

        let mut rt = RunningTask::start(&p, SimTime::ZERO, f1);
        rt.advance_to(switch_at);
        rt.set_frequency(switch_at, f2);
        let finish = rt.next_milestone().unwrap().time();

        let progress = switch_at.since(SimTime::ZERO).ratio(d1);
        let expect = switch_at + p.duration_at(f2).mul_f64(1.0 - progress);
        let err = finish.as_ps().abs_diff(expect.as_ps());
        prop_assert!(err <= 2, "finish {} vs analytic {} (err {err} ps)", finish, expect);
    }

    /// Activity timelines cover the whole run with no gaps and no overlap,
    /// whatever the record sequence.
    #[test]
    fn timeline_partitions_time(
        events in prop::collection::vec((1u64..1000, 0u8..3), 0..50),
        tail in 1u64..1000,
    ) {
        let mut tl = ActivityTimeline::new(PowerLevel::paper_slow(), Activity::Idle);
        let mut t = 0u64;
        for (dt, act) in &events {
            t += dt;
            let act = match act { 0 => Activity::Busy, 1 => Activity::Idle, _ => Activity::Halted };
            tl.record(SimTime::from_ns(t), PowerLevel::paper_slow(), act);
        }
        t += tail;
        tl.close(SimTime::from_ns(t));
        let mut cursor = SimTime::ZERO;
        for seg in tl.segments() {
            prop_assert_eq!(seg.start, cursor, "gap/overlap at {}", cursor);
            cursor += seg.duration;
        }
        prop_assert_eq!(cursor, SimTime::from_ns(t));
        prop_assert_eq!(tl.total(), SimDuration::from_ns(t));
    }

    /// Machine transitions: after settling, the core is at the target; a
    /// superseded transition's stale settle is ignored.
    #[test]
    fn machine_transitions_converge(targets in prop::collection::vec(any::<bool>(), 1..20)) {
        let cfg = MachineConfig::small_test(1);
        let latency = cfg.reconfig_latency;
        let mut m = Machine::new(cfg);
        let core = CoreId(0);
        let mut now = SimTime::ZERO;
        let mut settles: Vec<SimTime> = Vec::new();
        for fast in &targets {
            let level = if *fast { PowerLevel::paper_fast() } else { PowerLevel::paper_slow() };
            if let Some(s) = m.begin_transition(core, level, now) {
                settles.push(s);
            }
            now += SimDuration::from_ns(100);
        }
        // Deliver all settle events in order.
        settles.sort();
        for s in settles {
            m.settle(core, s.max(now));
        }
        let last = if *targets.last().unwrap() { PowerLevel::paper_fast() } else { PowerLevel::paper_slow() };
        // After enough time every transition has settled at the last target.
        m.settle(core, now + latency);
        prop_assert_eq!(m.core(core).level(), last);
        prop_assert!(m.core(core).pending_transition().is_none());
    }
}
