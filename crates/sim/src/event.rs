//! Deterministic discrete-event queue.
//!
//! The simulation advances by popping the earliest pending event. Two events
//! scheduled for the same instant are delivered in the order they were pushed
//! (FIFO tie-break via a monotonically increasing sequence number), which
//! makes every simulation bit-for-bit reproducible — a property the test
//! suite relies on.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue over user-defined payloads `E`.
///
/// ```
/// use cata_sim::event::EventQueue;
/// use cata_sim::time::SimTime;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.push(SimTime::from_ns(20), "late");
/// q.push(SimTime::from_ns(10), "early");
/// q.push(SimTime::from_ns(10), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    /// Time of the last popped event; used to detect causality violations.
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `payload` for delivery at `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the time of the last popped event:
    /// scheduling into the past is always a simulator bug.
    pub fn push(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {now}",
            now = self.now
        );
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Removes and returns the earliest pending event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap returned a past event");
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// The delivery time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The time of the last popped event (the current simulation instant).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (diagnostic).
    pub fn pushed_total(&self) -> u64 {
        self.seq
    }

    /// Rewinds the queue to its initial state — empty, sequence 0, clock at
    /// `SimTime::ZERO` — while keeping the heap's allocation, so one queue
    /// can be reused across many runs (suite workers batch thousands of
    /// small scenarios; reallocating the heap per run is pure waste).
    pub fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.now = SimTime::ZERO;
    }

    /// Ensures capacity for at least `cap` pending events total.
    pub fn reserve(&mut self, cap: usize) {
        if self.heap.capacity() < cap {
            // `BinaryHeap::reserve` takes an *additional* count on top of
            // the current length.
            self.heap.reserve(cap - self.heap.len());
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3u32);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), ());
        q.push(SimTime::from_ns(10), ());
        q.push(SimTime::from_ns(40), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert_eq!(q.now(), SimTime::from_ns(40));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), ());
        q.pop();
        q.push(SimTime::from_ns(5), ());
    }

    #[test]
    fn push_at_now_is_allowed() {
        // An event handler may schedule follow-up work at the current instant
        // (zero-latency causality); it must be delivered after already-queued
        // same-instant events.
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 1u32);
        q.push(SimTime::from_ns(10), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        q.push(t + SimDuration::ZERO, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn reset_allows_reuse_from_time_zero() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 1u32);
        q.pop();
        // The clock advanced; a fresh run must start at zero again.
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.pushed_total(), 0);
        q.reserve(64);
        q.push(SimTime::from_ns(1), 2u32);
        assert_eq!(q.pop(), Some((SimTime::from_ns(1), 2)));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        assert_eq!(q.pushed_total(), 1);
    }
}
