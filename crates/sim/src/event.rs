//! Deterministic discrete-event queue.
//!
//! The simulation advances by popping the earliest pending event. Two events
//! scheduled for the same instant are delivered in the order they were pushed
//! (FIFO tie-break via a monotonically increasing sequence number), which
//! makes every simulation bit-for-bit reproducible — a property the test
//! suite relies on.
//!
//! # Backends
//!
//! The pop order is the total order on `(time, seq)`, so *any* correct
//! priority queue yields the identical event sequence. That freedom is
//! exposed as pluggable backends behind the [`EventSource`] trait:
//!
//! - [`HeapQueue`]: a binary heap — O(log n) push/pop, no tuning, the
//!   reference implementation.
//! - [`CalendarWheel`]: a calendar queue (Brown 1988) — O(1) amortized
//!   push/pop for the near-monotone event streams discrete-event
//!   simulation produces, self-tuning bucket width and count.
//!
//! [`EventQueue`] is the facade the engines hold: an enum over the two
//! backends with inlined dispatch (no `dyn` indirection on the hot path),
//! selected by [`EventBackend`]. Both backends are bit-identical by
//! construction; the golden-digest tests and the cross-backend property
//! tests pin that.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::str::FromStr;

/// The common surface of an event-queue backend.
///
/// All implementations deliver events in ascending `(time, push-order)`,
/// panic on pushes into the past, and advance an internal clock on pop.
pub trait EventSource<E> {
    /// Schedules `payload` for delivery at `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the time of the last popped event:
    /// scheduling into the past is always a simulator bug.
    fn push(&mut self, time: SimTime, payload: E);

    /// Removes and returns the earliest pending event, advancing the clock.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// The delivery time of the earliest pending event, if any.
    fn peek_time(&self) -> Option<SimTime>;

    /// The time of the last popped event (the current simulation instant).
    fn now(&self) -> SimTime;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// True if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (diagnostic).
    fn pushed_total(&self) -> u64;

    /// Rewinds the queue to its initial state — empty, sequence 0, clock at
    /// `SimTime::ZERO` — while keeping allocations, so one queue can be
    /// reused across many runs.
    fn reset(&mut self);

    /// Ensures capacity for at least `cap` pending events total.
    fn reserve(&mut self, cap: usize);
}

/// Which event-queue backend an engine should run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EventBackend {
    /// Binary-heap reference backend (`O(log n)` per op).
    Heap,
    /// Calendar-queue backend (`O(1)` amortized per op). The default.
    #[default]
    CalendarWheel,
}

impl EventBackend {
    /// All known backends, in registry order.
    pub const ALL: [EventBackend; 2] = [EventBackend::Heap, EventBackend::CalendarWheel];

    /// The stable string key naming this backend in specs and registries.
    pub fn name(self) -> &'static str {
        match self {
            EventBackend::Heap => "heap",
            EventBackend::CalendarWheel => "calendar-wheel",
        }
    }
}

impl FromStr for EventBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(EventBackend::Heap),
            "calendar-wheel" => Ok(EventBackend::CalendarWheel),
            other => Err(format!(
                "unknown event queue backend `{other}` (known: heap, calendar-wheel)"
            )),
        }
    }
}

impl std::fmt::Display for EventBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// The binary-heap backend: the original `EventQueue` implementation,
/// kept as the zero-tuning reference the wheel is checked against.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    /// Time of the last popped event; used to detect causality violations.
    now: SimTime,
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: SimTime::ZERO,
        }
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventSource<E> for HeapQueue<E> {
    fn push(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {now}",
            now = self.now
        );
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "heap returned a past event");
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn pushed_total(&self) -> u64 {
        self.seq
    }

    fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.now = SimTime::ZERO;
    }

    fn reserve(&mut self, cap: usize) {
        if self.heap.capacity() < cap {
            // `BinaryHeap::reserve` takes an *additional* count on top of
            // the current length.
            self.heap.reserve(cap - self.heap.len());
        }
    }
}

/// Smallest bucket-array size (as a power of two) the wheel shrinks to.
const WHEEL_MIN_BITS: u32 = 6;
/// Largest bucket-array size (as a power of two) the wheel grows to. The
/// pop-side min-scan walks the whole front array, so the ring is kept
/// small enough that the scan stays a few cache lines.
const WHEEL_MAX_BITS: u32 = 12;
/// Initial bucket width as a power of two of picoseconds (2^20 ps ≈ 1 µs —
/// the scale of task milestones in the paper's scenarios). The width
/// heuristics re-tune it within one adaptation window either way.
const WHEEL_INIT_SHIFT: u32 = 20;
/// Widest bucket the tuner will pick (2^40 ps ≈ 1 s).
const WHEEL_MAX_SHIFT: u32 = 40;
/// Pops per width-adaptation window.
const WHEEL_TUNE_WINDOW: u32 = 128;
/// Bucket fronts per group-min entry (as a power of two): the pop-side
/// rescan reduces 2^GROUP_BITS fronts, then the group-min array.
const WHEEL_GROUP_BITS: u32 = 4;

/// The calendar-queue backend (after Brown 1988): a ring of `2^nbits`
/// buckets, each `2^wshift` picoseconds wide, holding sorted pending
/// events, popped through a two-level min index over the bucket fronts.
///
/// An event at time `t` lives in bucket `(t >> wshift) & (nbuckets - 1)`.
/// Equal times always hash to the same bucket and buckets are kept sorted
/// by `(time, seq)`, so each bucket's front is its minimum and distinct
/// buckets never hold the same time — the smallest front is therefore the
/// exact global minimum *even when far-future events wrap around the
/// ring*, and the FIFO tie-break at equal times is the bucket's internal
/// order. Unlike the classic formulation there is no day cursor walking
/// the ring: pop reads a cached next-event time, pops that bucket's
/// front, and repairs the cache by reducing one 16-front group plus the
/// group-min array — a handful of contiguous cache lines regardless of
/// how the multi-modal event stream spreads over the ring. Same-time
/// bursts (a DES staple) skip the repair entirely: the next tie is
/// already at the same bucket's front.
///
/// Push appends to a bucket tail in the common case: a deterministic
/// feedback rule re-tunes the bucket width every [`WHEEL_TUNE_WINDOW`]
/// pops to one octave below the lower-quartile clock advance (see
/// [`retune`](Self::retune)), and the ring is sized to the pending
/// population (~2 buckets per event, capped so the pop-side scans stay
/// small). All triggers are functions of the event sequence alone —
/// never of wall-clock — so runs stay reproducible.
#[derive(Debug)]
pub struct CalendarWheel<E> {
    buckets: Vec<VecDeque<Entry<E>>>,
    /// `front_time[i]` mirrors `buckets[i].front().time` (`u64::MAX` when
    /// empty): pop scans walk this flat array — eight buckets per cache
    /// line — instead of dereferencing a `VecDeque` per probe.
    front_time: Vec<u64>,
    /// `group_min[g]` is the minimum of `front_time` over group `g`
    /// (`2^WHEEL_GROUP_BITS` consecutive buckets): the upper level of the
    /// min index pop uses to repair [`next_time`](Self::next_time).
    group_min: Vec<u64>,
    /// Reusable drain buffer for [`rebuild`](Self::rebuild).
    scratch: Vec<Entry<E>>,
    /// `buckets.len() == 1 << nbits`.
    nbits: u32,
    /// Bucket width is `1 << wshift` picoseconds.
    wshift: u32,
    /// Pending events across all buckets.
    len: usize,
    seq: u64,
    now: SimTime,
    /// Cached global minimum pending time (`u64::MAX` when empty). Kept
    /// exact by an O(1) `min` on push and a two-level repair on pop, so
    /// `peek_time` is a field read — engines peek far more often than
    /// they pop.
    next_time: u64,
    // Width-tuning window: pops since the window started, how many of
    // them advanced the clock, and a log2 histogram of those advances.
    win_pops: u32,
    win_adv: u32,
    win_hist: [u32; 44],
}

impl<E> CalendarWheel<E> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        CalendarWheel {
            buckets: Vec::new(),
            front_time: Vec::new(),
            group_min: Vec::new(),
            scratch: Vec::new(),
            nbits: WHEEL_MIN_BITS,
            wshift: WHEEL_INIT_SHIFT,
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            next_time: u64::MAX,
            win_pops: 0,
            win_adv: 0,
            win_hist: [0; 44],
        }
    }

    /// Creates an empty wheel (capacity hint is satisfied lazily; buckets
    /// grow to fit and are kept across [`reset`](EventSource::reset)).
    pub fn with_capacity(_cap: usize) -> Self {
        Self::new()
    }

    fn ensure_buckets(&mut self) {
        let nb = 1usize << self.nbits;
        if self.buckets.len() != nb {
            self.buckets.resize_with(nb, VecDeque::new);
            self.front_time.resize(nb, u64::MAX);
            self.group_min.resize(nb >> WHEEL_GROUP_BITS, u64::MAX);
        }
    }

    /// Repairs the min index after bucket `idx`'s front changed: reduces
    /// that bucket's 16-front group, then the group-min array, into
    /// [`next_time`](Self::next_time). Each front is its bucket's minimum
    /// (buckets are sorted) and distinct buckets never share a time, so
    /// the smallest front is the exact global minimum — even when
    /// far-future events have wrapped around the ring. Both reductions
    /// are over small contiguous `u64` runs (eight fronts per cache
    /// line); pushes maintain the index with plain `min`s instead.
    fn repair_min(&mut self, idx: usize) {
        let g = idx >> WHEEL_GROUP_BITS;
        let start = g << WHEEL_GROUP_BITS;
        let mut gm = u64::MAX;
        for &ft in &self.front_time[start..start + (1 << WHEEL_GROUP_BITS)] {
            gm = gm.min(ft);
        }
        self.group_min[g] = gm;
        let mut best = u64::MAX;
        for &m in &self.group_min {
            best = best.min(m);
        }
        self.next_time = best;
    }

    /// Rebuilds the bucket array after a parameter change, redistributing
    /// every pending entry under the new `(nbits, wshift)`.
    fn rebuild(&mut self, nbits: u32, wshift: u32) {
        let mut pending = std::mem::take(&mut self.scratch);
        pending.clear();
        for b in &mut self.buckets {
            pending.extend(b.drain(..));
        }
        self.nbits = nbits;
        self.wshift = wshift;
        self.ensure_buckets();
        self.front_time.fill(u64::MAX);
        self.group_min.fill(u64::MAX);
        self.next_time = u64::MAX;
        let mask = self.buckets.len() - 1;
        for e in pending.drain(..) {
            let t = e.time.as_ps();
            let idx = (t >> wshift) as usize & mask;
            if t < self.front_time[idx] {
                self.front_time[idx] = t;
                self.group_min[idx >> WHEEL_GROUP_BITS] =
                    self.group_min[idx >> WHEEL_GROUP_BITS].min(t);
                self.next_time = self.next_time.min(t);
            }
            Self::bucket_insert(&mut self.buckets[idx], e);
        }
        self.scratch = pending;
        self.win_pops = 0;
        self.win_adv = 0;
        self.win_hist = [0; 44];
    }

    /// Re-evaluates the wheel geometry at the end of a tuning window.
    ///
    /// DES streams are multi-modal: the engines here push at-now follow-ups,
    /// ~µs-scale control latencies, and task milestones tens of µs to ms
    /// out, all interleaved. A width derived from the *mean* inter-event
    /// gap lands between the modes and serves none of them — fat buckets
    /// swallow many near-term events and every push degenerates into a
    /// sorted mid-bucket insert (a `VecDeque` memmove). The right width
    /// sits *below the near mode*: one octave under the lower-quartile
    /// clock advance (read off the window's log2 histogram), so almost
    /// every push lands past its bucket's tail and appends. The resulting
    /// longer pop scans are cheap — they walk the flat `front_time` array.
    /// The bucket count is sized so one revolution covers the pending
    /// horizon (`max_time − now`) — otherwise far-future events wrap into
    /// buckets near the cursor, which is the other mid-insert factory.
    /// Width changes under one octave are ignored: streams breathe
    /// phase-to-phase, and chasing every wobble with a full rebuild costs
    /// more than the geometry error.
    fn retune(&mut self) {
        if self.win_adv == 0 {
            // A window of pure ties carries no rate signal; keep geometry.
            self.win_pops = 0;
            return;
        }
        let mut below = 0;
        let mut quartile = WHEEL_MAX_SHIFT;
        for (k, &c) in self.win_hist.iter().enumerate() {
            below += c;
            if below * 4 >= self.win_adv {
                quartile = (k as u32).min(WHEEL_MAX_SHIFT);
                break;
            }
        }
        let ideal_w = quartile.saturating_sub(1);
        let wshift = if ideal_w.abs_diff(self.wshift) >= 2 {
            ideal_w
        } else {
            self.wshift
        };
        // Size the ring to the pending population: ~2 buckets per event
        // keeps sorted inserts short, while the per-pop min-scan cost grows
        // with the ring, so there is no benefit in over-provisioning.
        let ideal_n = (2 * self.len as u64 + 1)
            .next_power_of_two()
            .trailing_zeros()
            .clamp(WHEEL_MIN_BITS, WHEEL_MAX_BITS);
        // Grow eagerly (wrapping is expensive), shrink reluctantly.
        let nbits = if ideal_n > self.nbits || ideal_n + 2 <= self.nbits {
            ideal_n
        } else {
            self.nbits
        };
        if wshift != self.wshift || nbits != self.nbits {
            self.rebuild(nbits, wshift);
        } else {
            self.win_pops = 0;
            self.win_adv = 0;
            self.win_hist = [0; 44];
        }
    }

    /// Inserts `e` into `b` keeping ascending `(time, seq)` order. Pushes
    /// are near-monotone, so the back-scan is O(1) in the common case.
    #[inline]
    fn bucket_insert(b: &mut VecDeque<Entry<E>>, e: Entry<E>) {
        let mut i = b.len();
        while i > 0 {
            // seq is globally increasing, so a time tie means the new
            // entry was pushed later and stays behind `prev`.
            if b[i - 1].time <= e.time {
                break;
            }
            i -= 1;
        }
        if i == b.len() {
            b.push_back(e);
        } else {
            b.insert(i, e);
        }
    }
}

impl<E> Default for CalendarWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventSource<E> for CalendarWheel<E> {
    fn push(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {now}",
            now = self.now
        );
        if self.buckets.is_empty() {
            self.ensure_buckets();
        }
        // Grow the ring when the population reaches it: one revolution must
        // stay ahead of the pending span, and at ~1 distinct time per width
        // that span is about `len` buckets.
        if self.len >= (1usize << self.nbits) && self.nbits < WHEEL_MAX_BITS {
            let (nbits, wshift) = (self.nbits + 1, self.wshift);
            self.rebuild(nbits, wshift);
        }
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.len += 1;
        let mask = self.buckets.len() - 1;
        let idx = (time.as_ps() >> self.wshift) as usize & mask;
        Self::bucket_insert(&mut self.buckets[idx], entry);
        // Sorted insert can only lower the bucket front (empty = MAX), and
        // a lower front can only lower its group min and the global min.
        let t = time.as_ps();
        if t < self.front_time[idx] {
            self.front_time[idx] = t;
            let g = idx >> WHEEL_GROUP_BITS;
            self.group_min[g] = self.group_min[g].min(t);
            self.next_time = self.next_time.min(t);
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        // All entries at the minimum time hash to the same bucket (same
        // time ⇒ same day ⇒ same index), so the cached `next_time` pins
        // the bucket directly and its front is the global `(time, seq)`
        // minimum.
        let idx = (self.next_time >> self.wshift) as usize & (self.buckets.len() - 1);
        let entry = self.buckets[idx]
            .pop_front()
            .expect("cached-min bucket is non-empty");
        debug_assert_eq!(entry.time.as_ps(), self.next_time);
        let nf = self.buckets[idx]
            .front()
            .map_or(u64::MAX, |e| e.time.as_ps());
        self.front_time[idx] = nf;
        debug_assert!(entry.time >= self.now, "wheel returned a past event");
        self.len -= 1;
        // Same-time burst fast path: if the bucket's new front ties the
        // popped time, the min index is still exact — skip the repair.
        if nf != self.next_time {
            self.repair_min(idx);
        }
        if entry.time > self.now {
            self.win_adv += 1;
            let d = entry.time.as_ps() - self.now.as_ps();
            let b = (64 - (d | 1).leading_zeros()).min(43) as usize;
            self.win_hist[b] += 1;
        }
        self.now = entry.time;
        self.win_pops += 1;
        if self.win_pops >= WHEEL_TUNE_WINDOW {
            self.retune();
        }
        Some((entry.time, entry.payload))
    }

    fn peek_time(&self) -> Option<SimTime> {
        (self.len > 0).then(|| SimTime::from_ps(self.next_time))
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn len(&self) -> usize {
        self.len
    }

    fn pushed_total(&self) -> u64 {
        self.seq
    }

    fn reset(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.front_time.fill(u64::MAX);
        self.group_min.fill(u64::MAX);
        self.len = 0;
        self.seq = 0;
        self.now = SimTime::ZERO;
        self.next_time = u64::MAX;
        self.win_hist = [0; 44];
        self.win_pops = 0;
        // nbits/wshift deliberately survive: the tuned geometry is the
        // right starting point for the next run of a batch, and the pop
        // order is backend-invariant so reuse cannot change results.
    }

    fn reserve(&mut self, _cap: usize) {
        // Buckets grow organically and persist across resets; there is no
        // single allocation to pre-size.
        self.ensure_buckets();
    }
}

/// An event queue over user-defined payloads `E`.
///
/// This is the facade the engines hold: one of the [`EventSource`]
/// backends selected by [`EventBackend`], dispatched by an inlined match
/// (the payload type is generic, so no boxing and no vtable).
///
/// ```
/// use cata_sim::event::EventQueue;
/// use cata_sim::time::SimTime;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.push(SimTime::from_ns(20), "late");
/// q.push(SimTime::from_ns(10), "early");
/// q.push(SimTime::from_ns(10), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
// The wheel's inline retuning state dwarfs the heap variant, but a queue
// lives one-per-engine (never in arrays), and boxing would put a pointer
// chase on the hottest loop in the simulator.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum EventQueue<E> {
    /// Binary-heap backend.
    Heap(HeapQueue<E>),
    /// Calendar-queue backend.
    Wheel(CalendarWheel<E>),
}

macro_rules! delegate {
    ($self:expr, $q:ident => $body:expr) => {
        match $self {
            EventQueue::Heap($q) => $body,
            EventQueue::Wheel($q) => $body,
        }
    };
}

/// The process-wide default backend: [`EventBackend::default`], overridable
/// once via the `CATA_EVENT_QUEUE` environment variable (`heap` /
/// `calendar-wheel`) — a diagnostic escape hatch for A/B timing runs
/// without editing specs. Invalid values fall back to the default.
pub fn default_backend() -> EventBackend {
    static DEFAULT: std::sync::OnceLock<EventBackend> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("CATA_EVENT_QUEUE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_default()
    })
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the [`default_backend`].
    pub fn new() -> Self {
        Self::with_backend(default_backend())
    }

    /// Creates an empty queue on the given backend.
    pub fn with_backend(backend: EventBackend) -> Self {
        match backend {
            EventBackend::Heap => EventQueue::Heap(HeapQueue::new()),
            EventBackend::CalendarWheel => EventQueue::Wheel(CalendarWheel::new()),
        }
    }

    /// Creates an empty queue with pre-allocated capacity (default backend).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.reserve(cap);
        q
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> EventBackend {
        match self {
            EventQueue::Heap(_) => EventBackend::Heap,
            EventQueue::Wheel(_) => EventBackend::CalendarWheel,
        }
    }

    /// Switches to `backend` if not already on it, discarding pending
    /// events (callers switch between runs, right before a reset).
    pub fn ensure_backend(&mut self, backend: EventBackend) {
        if self.backend() != backend {
            *self = Self::with_backend(backend);
        }
    }

    /// Schedules `payload` for delivery at `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the time of the last popped event:
    /// scheduling into the past is always a simulator bug.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) {
        delegate!(self, q => q.push(time, payload))
    }

    /// Removes and returns the earliest pending event, advancing the clock.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        delegate!(self, q => q.pop())
    }

    /// The delivery time of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        delegate!(self, q => q.peek_time())
    }

    /// The time of the last popped event (the current simulation instant).
    #[inline]
    pub fn now(&self) -> SimTime {
        delegate!(self, q => q.now())
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        delegate!(self, q => q.len())
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed (diagnostic).
    #[inline]
    pub fn pushed_total(&self) -> u64 {
        delegate!(self, q => q.pushed_total())
    }

    /// Rewinds the queue to its initial state — empty, sequence 0, clock at
    /// `SimTime::ZERO` — while keeping allocations, so one queue can be
    /// reused across many runs (suite workers batch thousands of small
    /// scenarios; reallocating per run is pure waste).
    pub fn reset(&mut self) {
        delegate!(self, q => q.reset())
    }

    /// Ensures capacity for at least `cap` pending events total.
    pub fn reserve(&mut self, cap: usize) {
        delegate!(self, q => q.reserve(cap))
    }
}

impl<E> EventSource<E> for EventQueue<E> {
    fn push(&mut self, time: SimTime, payload: E) {
        EventQueue::push(self, time, payload)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn pushed_total(&self) -> u64 {
        EventQueue::pushed_total(self)
    }
    fn reset(&mut self) {
        EventQueue::reset(self)
    }
    fn reserve(&mut self, cap: usize) {
        EventQueue::reserve(self, cap)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Runs `f` once per backend so every invariant is pinned on both.
    fn each_backend(f: impl Fn(EventQueue<u32>)) {
        for b in EventBackend::ALL {
            f(EventQueue::with_backend(b));
        }
    }

    #[test]
    fn pops_in_time_order() {
        each_backend(|mut q| {
            q.push(SimTime::from_ns(30), 3u32);
            q.push(SimTime::from_ns(10), 1);
            q.push(SimTime::from_ns(20), 2);
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        each_backend(|mut q| {
            let t = SimTime::from_ns(5);
            for i in 0..100u32 {
                q.push(t, i);
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn clock_advances_monotonically() {
        each_backend(|mut q| {
            q.push(SimTime::from_ns(10), 0);
            q.push(SimTime::from_ns(10), 0);
            q.push(SimTime::from_ns(40), 0);
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
            }
            assert_eq!(q.now(), SimTime::from_ns(40));
        });
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), ());
        q.pop();
        q.push(SimTime::from_ns(5), ());
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics_on_heap() {
        let mut q = EventQueue::with_backend(EventBackend::Heap);
        q.push(SimTime::from_ns(10), ());
        q.pop();
        q.push(SimTime::from_ns(5), ());
    }

    #[test]
    fn push_at_now_is_allowed() {
        // An event handler may schedule follow-up work at the current instant
        // (zero-latency causality); it must be delivered after already-queued
        // same-instant events.
        each_backend(|mut q| {
            q.push(SimTime::from_ns(10), 1u32);
            q.push(SimTime::from_ns(10), 2);
            let (t, e) = q.pop().unwrap();
            assert_eq!(e, 1);
            q.push(t + SimDuration::ZERO, 3);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 3);
        });
    }

    #[test]
    fn reset_allows_reuse_from_time_zero() {
        each_backend(|mut q| {
            q.push(SimTime::from_ns(10), 1u32);
            q.pop();
            // The clock advanced; a fresh run must start at zero again.
            q.reset();
            assert!(q.is_empty());
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(q.pushed_total(), 0);
            q.reserve(64);
            q.push(SimTime::from_ns(1), 2u32);
            assert_eq!(q.pop(), Some((SimTime::from_ns(1), 2)));
        });
    }

    #[test]
    fn peek_and_len() {
        each_backend(|mut q| {
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_ns(7), 0);
            assert_eq!(q.len(), 1);
            assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
            assert_eq!(q.pushed_total(), 1);
        });
    }

    #[test]
    fn backend_names_round_trip() {
        for b in EventBackend::ALL {
            assert_eq!(b.name().parse::<EventBackend>().unwrap(), b);
        }
        assert!("quantum".parse::<EventBackend>().is_err());
        assert_eq!(EventBackend::default(), EventBackend::CalendarWheel);
    }

    #[test]
    fn ensure_backend_switches_and_is_idempotent() {
        let mut q: EventQueue<u32> = EventQueue::with_backend(EventBackend::Heap);
        assert_eq!(q.backend(), EventBackend::Heap);
        q.ensure_backend(EventBackend::CalendarWheel);
        assert_eq!(q.backend(), EventBackend::CalendarWheel);
        q.push(SimTime::from_ns(1), 1);
        q.ensure_backend(EventBackend::CalendarWheel);
        assert_eq!(q.len(), 1, "no-op switch must not discard events");
    }

    /// Far-future events (beyond one wheel revolution) still pop in order —
    /// exercises the min-scan fallback and the cursor jump.
    #[test]
    fn wheel_handles_far_future_events() {
        let mut q: EventQueue<u32> = EventQueue::with_backend(EventBackend::CalendarWheel);
        q.push(SimTime::from_ms(5_000), 3);
        q.push(SimTime::from_ns(1), 1);
        q.push(SimTime::from_ms(90_000), 4);
        q.push(SimTime::from_us(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
        assert_eq!(q.now(), SimTime::from_ms(90_000));
    }

    /// Enough load to force ring growth, width re-tunes, and shrink back.
    #[test]
    fn wheel_resizes_under_load_without_reordering() {
        let mut q: EventQueue<u64> = EventQueue::with_backend(EventBackend::CalendarWheel);
        let mut r: EventQueue<u64> = EventQueue::with_backend(EventBackend::Heap);
        // Deterministic scramble of times, many ties, wide range.
        let mut rng = crate::seeded::SplitMix64::new(0);
        for i in 0..10_000u64 {
            let x = rng.next_u64();
            let t = SimTime::from_ps((x % (1 << 30)) * (i % 7));
            q.push(t, i);
            r.push(t, i);
        }
        loop {
            let (a, b) = (q.pop(), r.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
