//! Seeded deterministic streams and content digests — the one home for
//! the SplitMix64 generator and the FNV-1a digest the whole workspace
//! shares.
//!
//! Before this module, the workspace carried hand-inlined copies of the
//! same two primitives: SplitMix64 in the fault injector, the traffic-tape
//! generator, the suite seed derivation, the native runtime's retry
//! jitter, the flaky-DVFS wrapper and several test RNGs; FNV-1a in the TDG
//! file format. Every copy used identical constants — pinned by the golden
//! digest tests — so consolidating them here changes no byte of any
//! digest, seed derivation or fault trace. Downstream crates re-export
//! from here (`cata_tdg::fnv1a_hex`, `cata_core::exp::suite::derive_seed`)
//! so existing paths keep working.

/// The SplitMix64 state increment (the 64-bit golden ratio). Also used
/// directly by callers that mix a counter into a seed before finalizing.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer: a bijective avalanche mix of one 64-bit
/// word. [`SplitMix64::next_u64`] is `mix64` over a gamma-stepped state;
/// stateless consumers (per-index jitter, seed derivation) call it
/// directly on `base + f(index)`.
#[inline]
pub fn mix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 — tiny, dependency-free, well distributed, and trivially
/// seedable: the deterministic generator behind every seeded stream in
/// the workspace (fault schedules, Poisson arrivals, retry jitter).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose first output is `mix64(seed + GOLDEN_GAMMA)`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Multiplier separating stream/index tags in [`derive_seed`]; chosen
/// once (PR 1) and pinned by every recorded suite seed since.
pub const STREAM_GAMMA: u64 = 0xD1B5_4A32_D192_ED03;

/// Derives the `index`-th run seed from a suite base seed — one SplitMix64
/// step over a stream-tagged state. Deterministic and stable across
/// platforms; also the construction behind per-purpose RNG streams
/// (fault draws vs arrival draws never entangle).
pub fn derive_seed(base: u64, index: u64) -> u64 {
    mix64(
        base.wrapping_add(GOLDEN_GAMMA)
            .wrapping_add(index.wrapping_mul(STREAM_GAMMA)),
    )
}

/// FNV-1a over a byte stream, rendered as 16 hex digits. The one digest
/// function of the whole workspace: TDG content digests, the results
/// store's spec/grid digests, traffic-tape digests and fault/memory
/// report digests all call it, so every identity lives in one namespace
/// by construction.
pub fn fnv1a_hex(bytes: impl Iterator<Item = u8>) -> String {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact draw sequence every pre-consolidation copy produced —
    /// any constant drift here would silently re-seed fault schedules and
    /// traffic tapes behind identical-looking specs.
    #[test]
    fn splitmix_sequence_is_pinned() {
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn next_unit_is_in_unit_interval() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..1000 {
            let u = rng.next_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn derive_seed_matches_manual_construction() {
        let want = mix64(
            7u64.wrapping_add(GOLDEN_GAMMA)
                .wrapping_add(3u64.wrapping_mul(STREAM_GAMMA)),
        );
        assert_eq!(derive_seed(7, 3), want);
        assert_ne!(derive_seed(7, 3), derive_seed(7, 4));
        assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
    }

    /// FNV-1a reference vectors (64-bit offset basis / prime).
    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a_hex("".bytes()), "cbf29ce484222325");
        assert_eq!(fnv1a_hex("a".bytes()), "af63dc4c8601ec8c");
        assert_eq!(fnv1a_hex("foobar".bytes()), "85944171f73967e8");
    }
}
