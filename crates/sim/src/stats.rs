//! Counters and latency histograms for the evaluation.
//!
//! Section V-C of the paper reports reconfiguration-latency distributions
//! (averages of 11–65 µs, maxima of several milliseconds under lock
//! contention) and the share of execution time spent reconfiguring
//! (0.03 %–3.49 %). [`LatencySamples`] collects exactly those statistics.

use crate::time::SimDuration;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// An online collection of duration samples with summary statistics.
///
/// Stores every sample (experiments record at most tens of thousands of
/// reconfigurations) so exact percentiles can be reported.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySamples {
    samples_ps: Vec<u64>,
    sorted: bool,
}

impl LatencySamples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_ps.push(d.as_ps());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples_ps.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ps.is_empty()
    }

    /// Sum of all samples.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_ps(self.samples_ps.iter().sum())
    }

    /// Arithmetic mean, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples_ps.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples_ps.iter().map(|&x| x as u128).sum();
        SimDuration::from_ps((sum / self.samples_ps.len() as u128) as u64)
    }

    /// Largest sample, or zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ps(self.samples_ps.iter().copied().max().unwrap_or(0))
    }

    /// Smallest sample, or zero if empty.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_ps(self.samples_ps.iter().copied().min().unwrap_or(0))
    }

    /// The `q`-quantile (q in [0, 1]) by nearest-rank, or zero if empty.
    pub fn quantile(&mut self, q: f64) -> SimDuration {
        if self.samples_ps.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples_ps.sort_unstable();
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.samples_ps.len() as f64 - 1.0) * q).round() as usize;
        SimDuration::from_ps(self.samples_ps[rank])
    }

    /// The `q`-quantile without mutating the collection. A pure renderer
    /// (`State -> Frame`) holds reports by shared reference and cannot use
    /// the lazily-sorting [`quantile`](Self::quantile); this variant sorts
    /// a copy when the samples are not already in order (reports hold at
    /// most tens of thousands of samples, so the copy is dashboard-cheap).
    pub fn quantile_of(&self, q: f64) -> SimDuration {
        if self.samples_ps.is_empty() {
            return SimDuration::ZERO;
        }
        let sorted_ps;
        let samples = if self.sorted {
            &self.samples_ps
        } else {
            let mut copy = self.samples_ps.clone();
            copy.sort_unstable();
            sorted_ps = copy;
            &sorted_ps
        };
        let q = q.clamp(0.0, 1.0);
        let rank = ((samples.len() as f64 - 1.0) * q).round() as usize;
        SimDuration::from_ps(samples[rank])
    }

    /// Merges another collection into this one.
    pub fn merge(&mut self, other: &LatencySamples) {
        self.samples_ps.extend_from_slice(&other.samples_ps);
        self.sorted = false;
    }
}

impl fmt::Display for LatencySamples {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count(),
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

/// Sub-bucket resolution of [`LatencyHistogram`]: each power-of-two octave
/// is split into `2^4 = 16` linear sub-buckets, bounding the relative
/// quantile error at 1/16 ≈ 6 %.
const HIST_SUB_BITS: u32 = 4;
const HIST_SUB: u64 = 1 << HIST_SUB_BITS;

/// A streaming log-bucketed duration histogram.
///
/// Open-system service runs record one latency per graph *instance* —
/// potentially millions per simulation — so storing every sample (as
/// [`LatencySamples`] does) is off the table. This histogram keeps a fixed
/// set of log-linear buckets (16 linear sub-buckets per power-of-two
/// octave, HdrHistogram-style): `record` is O(1) with no allocation beyond
/// the one-time growth of the bucket array (at most 976 entries), and
/// quantiles are deterministic bucket lower bounds with ≤ 6 % relative
/// error. Exact `min`/`max`/`sum` are tracked on the side so the extremes
/// and the mean stay precise.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHistogram {
    /// `counts[b]` = samples in bucket `b`; grown lazily to the highest
    /// occupied bucket.
    counts: Vec<u64>,
    total: u64,
    sum_ps: u64,
    min_ps: u64,
    max_ps: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of a picosecond value. Values below 16 get exact
    /// unit buckets; larger values go to `(octave, top-4-mantissa-bits)`.
    fn bucket_of(ps: u64) -> usize {
        if ps < HIST_SUB {
            return ps as usize;
        }
        let exp = 63 - ps.leading_zeros();
        let sub = (ps >> (exp - HIST_SUB_BITS)) & (HIST_SUB - 1);
        ((u64::from(exp - HIST_SUB_BITS + 1) * HIST_SUB) + sub) as usize
    }

    /// The smallest picosecond value that maps to bucket `b` (the value
    /// quantiles report for samples landing in `b`).
    fn bucket_floor(b: usize) -> u64 {
        let b = b as u64;
        if b < HIST_SUB {
            return b;
        }
        let exp = b / HIST_SUB + u64::from(HIST_SUB_BITS) - 1;
        let sub = b % HIST_SUB;
        (HIST_SUB + sub) << (exp - u64::from(HIST_SUB_BITS))
    }

    /// Records one sample. O(1); never allocates per sample once the
    /// bucket array has grown to cover the value range.
    pub fn record(&mut self, d: SimDuration) {
        let ps = d.as_ps();
        let b = Self::bucket_of(ps);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum_ps = self.sum_ps.saturating_add(ps);
        self.max_ps = self.max_ps.max(ps);
        self.min_ps = if self.total == 1 {
            ps
        } else {
            self.min_ps.min(ps)
        };
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_ps(self.sum_ps / self.total)
    }

    /// Exact largest sample, or zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ps(self.max_ps)
    }

    /// Exact smallest sample, or zero if empty.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_ps(self.min_ps)
    }

    /// The `q`-quantile (q in [0, 1]) by nearest rank over the buckets, or
    /// zero if empty. Interior quantiles report the lower bound of the
    /// bucket holding the ranked sample (≤ 6 % below the true value);
    /// `q = 0` and `q = 1` report the exact extremes.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min();
        }
        if q == 1.0 {
            return self.max();
        }
        let rank = ((self.total - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return SimDuration::from_ps(Self::bucket_floor(b).max(self.min_ps));
            }
        }
        self.max()
    }

    /// The occupied buckets as `(lower_bound_ps, count)` pairs in
    /// ascending value order — the shape a renderer needs to draw the
    /// latency distribution without reaching into the bucket encoding.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| (Self::bucket_floor(b), c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.total == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.min_ps = if self.total == 0 {
            other.min_ps
        } else {
            self.min_ps.min(other.min_ps)
        };
        self.max_ps = self.max_ps.max(other.max_ps);
        self.sum_ps = self.sum_ps.saturating_add(other.sum_ps);
        self.total += other.total;
    }
}

// Hand-written serde: the bucket array is mostly zeros, so it is stored
// sparsely as `[bucket, count]` pairs. Round-trips bit-exactly.
impl Serialize for LatencyHistogram {
    fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| Value::Seq(vec![Value::U64(b as u64), Value::U64(c)]))
            .collect();
        Value::Map(vec![
            ("total".to_string(), Value::U64(self.total)),
            ("sum_ps".to_string(), Value::U64(self.sum_ps)),
            ("min_ps".to_string(), Value::U64(self.min_ps)),
            ("max_ps".to_string(), Value::U64(self.max_ps)),
            ("buckets".to_string(), Value::Seq(buckets)),
        ])
    }
}

impl Deserialize for LatencyHistogram {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map_for("LatencyHistogram")?;
        let mut h = LatencyHistogram {
            counts: Vec::new(),
            total: serde::field(m, "total", "LatencyHistogram")?,
            sum_ps: serde::field(m, "sum_ps", "LatencyHistogram")?,
            min_ps: serde::field(m, "min_ps", "LatencyHistogram")?,
            max_ps: serde::field(m, "max_ps", "LatencyHistogram")?,
        };
        let pairs = match m.iter().find(|(k, _)| k == "buckets") {
            Some((_, v)) => v.as_seq_for("LatencyHistogram.buckets")?,
            None => return Err(DeError::new("LatencyHistogram: missing field `buckets`")),
        };
        let mut restored = 0u64;
        for pair in pairs {
            let p = pair.as_seq_for("LatencyHistogram bucket pair")?;
            if p.len() != 2 {
                return Err(DeError::new("LatencyHistogram bucket pair must be [b, n]"));
            }
            let b: usize = u64::from_value(&p[0])? as usize;
            let c: u64 = u64::from_value(&p[1])?;
            if b >= h.counts.len() {
                h.counts.resize(b + 1, 0);
            }
            h.counts[b] += c;
            restored += c;
        }
        if restored != h.total {
            return Err(DeError::new(format!(
                "LatencyHistogram: bucket counts sum to {restored}, total says {}",
                h.total
            )));
        }
        Ok(h)
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} max={}",
            self.count(),
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// A named set of monotonically increasing event counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counters {
    /// Tasks that completed execution.
    pub tasks_completed: u64,
    /// DVFS reconfigurations requested.
    pub reconfigs_requested: u64,
    /// DVFS reconfigurations that actually changed a core's level.
    pub reconfigs_applied: u64,
    /// Reconfigurations skipped because the target level was already set.
    pub reconfigs_noop: u64,
    /// Times a critical task could not be accelerated (no budget, all
    /// accelerated cores running critical tasks) — the residual priority
    /// inversion CATA cannot fix.
    pub accel_denied: u64,
    /// Times an accelerated non-critical task was decelerated to make room
    /// for a critical one (the CATA "swap").
    pub accel_swaps: u64,
    /// Tasks that were stolen across the HPRQ/LPRQ boundary.
    pub cross_queue_steals: u64,
    /// Core halt (C1 entry) events.
    pub halts: u64,
    /// Discrete events processed by the simulation engine (the denominator
    /// of the events/sec perf metric; zero for native runs).
    pub sim_events: u64,
}

impl Counters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, o: &Counters) {
        self.tasks_completed += o.tasks_completed;
        self.reconfigs_requested += o.reconfigs_requested;
        self.reconfigs_applied += o.reconfigs_applied;
        self.reconfigs_noop += o.reconfigs_noop;
        self.accel_denied += o.accel_denied;
        self.accel_swaps += o.accel_swaps;
        self.cross_queue_steals += o.cross_queue_steals;
        self.halts += o.halts;
        self.sim_events += o.sim_events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencySamples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
        assert_eq!(s.quantile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn summary_statistics() {
        let mut s = LatencySamples::new();
        for us in [10u64, 20, 30, 40, 100] {
            s.record(SimDuration::from_us(us));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), SimDuration::from_us(40));
        assert_eq!(s.min(), SimDuration::from_us(10));
        assert_eq!(s.max(), SimDuration::from_us(100));
        assert_eq!(s.quantile(0.5), SimDuration::from_us(30));
        assert_eq!(s.quantile(0.0), SimDuration::from_us(10));
        assert_eq!(s.quantile(1.0), SimDuration::from_us(100));
        assert_eq!(s.total(), SimDuration::from_us(200));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencySamples::new();
        a.record(SimDuration::from_us(1));
        let mut b = LatencySamples::new();
        b.record(SimDuration::from_us(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimDuration::from_us(2));
    }

    #[test]
    fn quantile_after_record_resorts() {
        let mut s = LatencySamples::new();
        s.record(SimDuration::from_us(10));
        assert_eq!(s.quantile(1.0), SimDuration::from_us(10));
        s.record(SimDuration::from_us(5));
        assert_eq!(s.quantile(0.0), SimDuration::from_us(5));
    }

    #[test]
    fn quantile_of_matches_sorting_quantile_without_mutation() {
        let mut s = LatencySamples::new();
        for us in [40u64, 10, 100, 20, 30] {
            s.record(SimDuration::from_us(us));
        }
        // The shared-reference variant agrees with the sorting one at
        // every rank, both before and after the internal sort happened.
        assert_eq!(s.quantile_of(0.5), SimDuration::from_us(30));
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(s.quantile_of(q), s.clone().quantile(q), "q={q}");
        }
        s.quantile(0.5); // sorts in place
        assert_eq!(s.quantile_of(1.0), SimDuration::from_us(100));
        assert!(LatencySamples::new().quantile_of(0.5).is_zero());
    }

    #[test]
    fn occupied_buckets_cover_every_sample_in_order() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 5, 5, 900, 12_000] {
            h.record(SimDuration::from_us(us));
        }
        let buckets: Vec<(u64, u64)> = h.occupied_buckets().collect();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0), "{buckets:?}");
        assert!(buckets.iter().all(|&(floor, _)| floor <= h.max().as_ps()));
    }

    #[test]
    fn histogram_buckets_are_contiguous_and_monotone() {
        // Every value maps into a bucket whose floor is <= it, and bucket
        // indices never decrease as values grow.
        let mut prev = 0usize;
        for ps in (0u64..4096).chain([1 << 20, 1 << 40, u64::MAX - 1, u64::MAX]) {
            let b = LatencyHistogram::bucket_of(ps);
            assert!(b >= prev, "monotone at {ps}");
            assert!(LatencyHistogram::bucket_floor(b) <= ps, "floor at {ps}");
            prev = b;
        }
        // Small values are exact.
        for ps in 0u64..16 {
            assert_eq!(
                LatencyHistogram::bucket_floor(LatencyHistogram::bucket_of(ps)),
                ps
            );
        }
    }

    #[test]
    fn histogram_quantiles_bound_error() {
        let mut h = LatencyHistogram::new();
        let mut exact = LatencySamples::new();
        for i in 1u64..=1000 {
            let d = SimDuration::from_ps(i * i * 1000);
            h.record(d);
            exact.record(d);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), SimDuration::from_ps(1000));
        assert_eq!(h.max(), SimDuration::from_ps(1000 * 1000 * 1000));
        assert_eq!(h.mean(), exact.mean());
        for q in [0.5, 0.9, 0.99, 0.999] {
            let approx = h.quantile(q).as_ps() as f64;
            let truth = exact.quantile(q).as_ps() as f64;
            assert!(
                approx <= truth && approx >= truth * (1.0 - 1.0 / 16.0) - 1.0,
                "q={q}: approx {approx} vs exact {truth}"
            );
        }
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 0u64..100 {
            let d = SimDuration::from_ns(i * 37 + 1);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            both.record(d);
        }
        a.merge(&b);
        assert_eq!(a, both);
        let mut empty = LatencyHistogram::new();
        empty.merge(&both);
        assert_eq!(empty, both);
    }

    #[test]
    fn histogram_serde_round_trips() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 5, 5, 900, 12_000] {
            h.record(SimDuration::from_us(us));
        }
        let v = h.to_value();
        let back = LatencyHistogram::from_value(&v).expect("round trip");
        assert_eq!(h, back);
        // Empty histograms round-trip too.
        let e = LatencyHistogram::new();
        assert_eq!(LatencyHistogram::from_value(&e.to_value()).unwrap(), e);
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters {
            tasks_completed: 3,
            accel_swaps: 1,
            ..Counters::default()
        };
        let b = Counters {
            tasks_completed: 2,
            halts: 7,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.tasks_completed, 5);
        assert_eq!(a.accel_swaps, 1);
        assert_eq!(a.halts, 7);
    }
}
