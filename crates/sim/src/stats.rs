//! Counters and latency histograms for the evaluation.
//!
//! Section V-C of the paper reports reconfiguration-latency distributions
//! (averages of 11–65 µs, maxima of several milliseconds under lock
//! contention) and the share of execution time spent reconfiguring
//! (0.03 %–3.49 %). [`LatencySamples`] collects exactly those statistics.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An online collection of duration samples with summary statistics.
///
/// Stores every sample (experiments record at most tens of thousands of
/// reconfigurations) so exact percentiles can be reported.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySamples {
    samples_ps: Vec<u64>,
    sorted: bool,
}

impl LatencySamples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_ps.push(d.as_ps());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples_ps.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ps.is_empty()
    }

    /// Sum of all samples.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_ps(self.samples_ps.iter().sum())
    }

    /// Arithmetic mean, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples_ps.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples_ps.iter().map(|&x| x as u128).sum();
        SimDuration::from_ps((sum / self.samples_ps.len() as u128) as u64)
    }

    /// Largest sample, or zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ps(self.samples_ps.iter().copied().max().unwrap_or(0))
    }

    /// Smallest sample, or zero if empty.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_ps(self.samples_ps.iter().copied().min().unwrap_or(0))
    }

    /// The `q`-quantile (q in [0, 1]) by nearest-rank, or zero if empty.
    pub fn quantile(&mut self, q: f64) -> SimDuration {
        if self.samples_ps.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples_ps.sort_unstable();
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.samples_ps.len() as f64 - 1.0) * q).round() as usize;
        SimDuration::from_ps(self.samples_ps[rank])
    }

    /// Merges another collection into this one.
    pub fn merge(&mut self, other: &LatencySamples) {
        self.samples_ps.extend_from_slice(&other.samples_ps);
        self.sorted = false;
    }
}

impl fmt::Display for LatencySamples {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count(),
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

/// A named set of monotonically increasing event counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counters {
    /// Tasks that completed execution.
    pub tasks_completed: u64,
    /// DVFS reconfigurations requested.
    pub reconfigs_requested: u64,
    /// DVFS reconfigurations that actually changed a core's level.
    pub reconfigs_applied: u64,
    /// Reconfigurations skipped because the target level was already set.
    pub reconfigs_noop: u64,
    /// Times a critical task could not be accelerated (no budget, all
    /// accelerated cores running critical tasks) — the residual priority
    /// inversion CATA cannot fix.
    pub accel_denied: u64,
    /// Times an accelerated non-critical task was decelerated to make room
    /// for a critical one (the CATA "swap").
    pub accel_swaps: u64,
    /// Tasks that were stolen across the HPRQ/LPRQ boundary.
    pub cross_queue_steals: u64,
    /// Core halt (C1 entry) events.
    pub halts: u64,
    /// Discrete events processed by the simulation engine (the denominator
    /// of the events/sec perf metric; zero for native runs).
    pub sim_events: u64,
}

impl Counters {
    /// Adds another counter set into this one.
    pub fn merge(&mut self, o: &Counters) {
        self.tasks_completed += o.tasks_completed;
        self.reconfigs_requested += o.reconfigs_requested;
        self.reconfigs_applied += o.reconfigs_applied;
        self.reconfigs_noop += o.reconfigs_noop;
        self.accel_denied += o.accel_denied;
        self.accel_swaps += o.accel_swaps;
        self.cross_queue_steals += o.cross_queue_steals;
        self.halts += o.halts;
        self.sim_events += o.sim_events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let mut s = LatencySamples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
        assert_eq!(s.quantile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn summary_statistics() {
        let mut s = LatencySamples::new();
        for us in [10u64, 20, 30, 40, 100] {
            s.record(SimDuration::from_us(us));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), SimDuration::from_us(40));
        assert_eq!(s.min(), SimDuration::from_us(10));
        assert_eq!(s.max(), SimDuration::from_us(100));
        assert_eq!(s.quantile(0.5), SimDuration::from_us(30));
        assert_eq!(s.quantile(0.0), SimDuration::from_us(10));
        assert_eq!(s.quantile(1.0), SimDuration::from_us(100));
        assert_eq!(s.total(), SimDuration::from_us(200));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencySamples::new();
        a.record(SimDuration::from_us(1));
        let mut b = LatencySamples::new();
        b.record(SimDuration::from_us(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimDuration::from_us(2));
    }

    #[test]
    fn quantile_after_record_resorts() {
        let mut s = LatencySamples::new();
        s.record(SimDuration::from_us(10));
        assert_eq!(s.quantile(1.0), SimDuration::from_us(10));
        s.record(SimDuration::from_us(5));
        assert_eq!(s.quantile(0.0), SimDuration::from_us(5));
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters {
            tasks_completed: 3,
            accel_swaps: 1,
            ..Counters::default()
        };
        let b = Counters {
            tasks_completed: 2,
            halts: 7,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.tasks_completed, 5);
        assert_eq!(a.accel_swaps, 1);
        assert_eq!(a.halts, 7);
    }
}
