//! Per-core activity timelines.
//!
//! Every core records a sequence of homogeneous segments — (duration, power
//! level, activity) — that the `cata-power` crate integrates into energy.
//! Segments are appended whenever the core's activity or settled power level
//! changes, so the timeline is an exact piece-wise-constant description of
//! the core's power-relevant state over the whole simulation.

use crate::machine::PowerLevel;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What a core is doing, from the power model's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Executing task (or runtime) instructions: full dynamic power.
    Busy,
    /// Spinning in the runtime's idle loop waiting for work: reduced dynamic
    /// power (the idle loop keeps the pipeline lightly active).
    Idle,
    /// Halted in the ACPI C1 state (after executing `hlt`): clock gated,
    /// near-zero dynamic power. Entered by blocked tasks and by TurboMode's
    /// idle detection.
    Halted,
}

/// One homogeneous stretch of a core's existence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// When the segment started.
    pub start: SimTime,
    /// How long it lasted.
    pub duration: SimDuration,
    /// Operating point during the segment.
    pub level: PowerLevel,
    /// Activity during the segment.
    pub activity: Activity,
}

/// An append-only piece-wise-constant activity record for one core.
#[derive(Debug, Clone)]
pub struct ActivityTimeline {
    segments: Vec<Segment>,
    // Open segment state.
    open_since: SimTime,
    level: PowerLevel,
    activity: Activity,
    closed: bool,
}

impl ActivityTimeline {
    /// Starts a timeline at t = 0 in the given state.
    pub fn new(level: PowerLevel, activity: Activity) -> Self {
        ActivityTimeline {
            segments: Vec::new(),
            open_since: SimTime::ZERO,
            level,
            activity,
            closed: false,
        }
    }

    /// Records an activity change at `now` (level unchanged).
    pub fn record(&mut self, now: SimTime, level: PowerLevel, activity: Activity) {
        debug_assert!(!self.closed, "timeline already closed");
        if level == self.level && activity == self.activity {
            return; // No state change; keep the open segment running.
        }
        self.flush(now);
        self.level = level;
        self.activity = activity;
    }

    /// Records a settled DVFS level change at `now` (activity unchanged).
    pub fn record_level_change(&mut self, now: SimTime, level: PowerLevel) {
        let activity = self.activity;
        self.record(now, level, activity);
    }

    /// Closes the timeline at simulation end, flushing the open segment.
    pub fn close(&mut self, end: SimTime) {
        if self.closed {
            return;
        }
        self.flush(end);
        self.closed = true;
    }

    fn flush(&mut self, now: SimTime) {
        let duration = now.saturating_since(self.open_since);
        if !duration.is_zero() {
            self.segments.push(Segment {
                start: self.open_since,
                duration,
                level: self.level,
                activity: self.activity,
            });
        }
        self.open_since = now;
    }

    /// The recorded segments. Only complete after [`close`](Self::close).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total time spent in a given activity (over closed segments).
    pub fn time_in(&self, activity: Activity) -> SimDuration {
        self.segments
            .iter()
            .filter(|s| s.activity == activity)
            .map(|s| s.duration)
            .sum()
    }

    /// Total time covered by closed segments.
    pub fn total(&self) -> SimDuration {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Fraction of closed time spent busy (utilization).
    pub fn utilization(&self) -> f64 {
        self.time_in(Activity::Busy).ratio(self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow() -> PowerLevel {
        PowerLevel::paper_slow()
    }
    fn fast() -> PowerLevel {
        PowerLevel::paper_fast()
    }

    #[test]
    fn segments_cover_timeline_without_gaps() {
        let mut tl = ActivityTimeline::new(slow(), Activity::Idle);
        tl.record(SimTime::from_us(10), slow(), Activity::Busy);
        tl.record_level_change(SimTime::from_us(30), fast());
        tl.record(SimTime::from_us(50), fast(), Activity::Idle);
        tl.close(SimTime::from_us(60));

        let segs = tl.segments();
        assert_eq!(segs.len(), 4);
        // Contiguity.
        let mut t = SimTime::ZERO;
        for s in segs {
            assert_eq!(s.start, t);
            t += s.duration;
        }
        assert_eq!(t, SimTime::from_us(60));
        assert_eq!(tl.total(), SimDuration::from_us(60));
    }

    #[test]
    fn redundant_records_are_coalesced() {
        let mut tl = ActivityTimeline::new(slow(), Activity::Idle);
        tl.record(SimTime::from_us(5), slow(), Activity::Idle);
        tl.record(SimTime::from_us(9), slow(), Activity::Idle);
        tl.close(SimTime::from_us(10));
        assert_eq!(tl.segments().len(), 1);
        assert_eq!(tl.segments()[0].duration, SimDuration::from_us(10));
    }

    #[test]
    fn zero_length_segments_are_dropped() {
        let mut tl = ActivityTimeline::new(slow(), Activity::Idle);
        tl.record(SimTime::ZERO, slow(), Activity::Busy);
        tl.record(SimTime::ZERO, fast(), Activity::Busy);
        tl.close(SimTime::from_us(1));
        assert_eq!(tl.segments().len(), 1);
        assert_eq!(tl.segments()[0].level, fast());
    }

    #[test]
    fn time_accounting_per_activity() {
        let mut tl = ActivityTimeline::new(slow(), Activity::Idle);
        tl.record(SimTime::from_us(2), slow(), Activity::Busy);
        tl.record(SimTime::from_us(7), slow(), Activity::Halted);
        tl.close(SimTime::from_us(10));
        assert_eq!(tl.time_in(Activity::Idle), SimDuration::from_us(2));
        assert_eq!(tl.time_in(Activity::Busy), SimDuration::from_us(5));
        assert_eq!(tl.time_in(Activity::Halted), SimDuration::from_us(3));
        assert!((tl.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn close_is_idempotent() {
        let mut tl = ActivityTimeline::new(slow(), Activity::Busy);
        tl.close(SimTime::from_us(4));
        tl.close(SimTime::from_us(9));
        assert_eq!(tl.total(), SimDuration::from_us(4));
    }
}
