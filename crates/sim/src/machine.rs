//! The simulated chip: cores, power levels, and DVFS transitions.
//!
//! This module carries the Table I processor configuration of the paper and
//! the per-core DVFS state machine. Each core is either settled at a
//! [`PowerLevel`] or transitioning towards one; transitions take
//! [`MachineConfig::reconfig_latency`] (25 µs in the paper, matching an
//! efficient dual-rail Vdd implementation) during which the core keeps
//! running at its old frequency.

use crate::activity::{Activity, ActivityTimeline};
use crate::memory::MemorySubsystem;
use crate::time::{Frequency, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a core on the simulated chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u32);

impl CoreId {
    /// The core id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for CoreId {
    fn from(v: u32) -> Self {
        CoreId(v)
    }
}

impl From<usize> for CoreId {
    fn from(v: usize) -> Self {
        CoreId(v as u32)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A voltage/frequency operating point.
///
/// The paper's dual-rail Vdd design exposes exactly two: 2 GHz at 1.0 V
/// (fast/accelerated) and 1 GHz at 0.8 V (slow). The multi-level extension
/// (EXPERIMENTS.md, ablation A4) adds intermediate points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PowerLevel {
    /// Core clock frequency at this level.
    pub frequency: Frequency,
    /// Supply voltage in millivolts.
    pub voltage_mv: u32,
}

impl PowerLevel {
    /// The paper's fast level: 2 GHz at 1.0 V.
    pub const fn paper_fast() -> Self {
        PowerLevel {
            frequency: Frequency::from_ghz(2),
            voltage_mv: 1000,
        }
    }

    /// The paper's slow level: 1 GHz at 0.8 V.
    pub const fn paper_slow() -> Self {
        PowerLevel {
            frequency: Frequency::from_ghz(1),
            voltage_mv: 800,
        }
    }

    /// Supply voltage in volts.
    #[inline]
    pub fn voltage_v(self) -> f64 {
        self.voltage_mv as f64 / 1000.0
    }
}

impl fmt::Display for PowerLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{:.2}V", self.frequency, self.voltage_v())
    }
}

/// Static configuration of the simulated processor (Table I of the paper).
///
/// Fields that only matter at instruction grain (issue width, branch
/// predictor, cache geometry) are carried for documentation and for the power
/// model's per-structure constants; the DES consumes the core count, the
/// power levels and the reconfiguration latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores on the chip (Table I: 32).
    pub num_cores: usize,
    /// Accelerated operating point (Table I: 2 GHz, 1.0 V).
    pub fast_level: PowerLevel,
    /// Non-accelerated operating point (Table I: 1 GHz, 0.8 V).
    pub slow_level: PowerLevel,
    /// DVFS transition latency (Table I: 25 µs).
    pub reconfig_latency: SimDuration,
    /// Fetch/issue/commit bandwidth in instructions per cycle (Table I: 4).
    pub issue_width: u32,
    /// Reorder buffer entries (Table I: 128).
    pub rob_entries: u32,
    /// L1 data cache size in KiB (Table I: 64).
    pub l1d_kib: u32,
    /// L1 instruction cache size in KiB (Table I: 32).
    pub l1i_kib: u32,
    /// Shared L2 NUCA size per core in MiB (Table I: 2).
    pub l2_mib_per_core: u32,
    /// NoC mesh dimensions (Table I: 4x8).
    pub noc_mesh: (u32, u32),
    /// Process technology in nanometres (paper: 22 nm for McPAT).
    pub tech_nm: u32,
}

impl MachineConfig {
    /// The exact configuration of Table I.
    pub fn paper_table1() -> Self {
        MachineConfig {
            num_cores: 32,
            fast_level: PowerLevel::paper_fast(),
            slow_level: PowerLevel::paper_slow(),
            reconfig_latency: SimDuration::from_us(25),
            issue_width: 4,
            rob_entries: 128,
            l1d_kib: 64,
            l1i_kib: 32,
            l2_mib_per_core: 2,
            noc_mesh: (4, 8),
            tech_nm: 22,
        }
    }

    /// A small configuration for unit tests (4 cores, 1 µs reconfiguration).
    pub fn small_test(num_cores: usize) -> Self {
        MachineConfig {
            num_cores,
            reconfig_latency: SimDuration::from_us(1),
            ..Self::paper_table1()
        }
    }

    /// Renders the configuration as the rows of Table I.
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        vec![
            ("Core count".into(), self.num_cores.to_string()),
            ("Core type".into(), "Out-of-order single threaded".into()),
            (
                "DVFS fast".into(),
                format!("{} (accelerated)", self.fast_level),
            ),
            ("DVFS slow".into(), format!("{} (slow)", self.slow_level)),
            (
                "Reconfiguration latency".into(),
                format!("{}", self.reconfig_latency),
            ),
            (
                "Fetch/issue/commit width".into(),
                format!("{} instr/cycle", self.issue_width),
            ),
            (
                "Reorder buffer".into(),
                format!("{} entries", self.rob_entries),
            ),
            ("L1I".into(), format!("{}KB", self.l1i_kib)),
            ("L1D".into(), format!("{}KB", self.l1d_kib)),
            (
                "L2".into(),
                format!("shared NUCA, {}MB/core", self.l2_mib_per_core),
            ),
            (
                "NoC".into(),
                format!("{}x{} mesh", self.noc_mesh.0, self.noc_mesh.1),
            ),
            ("Technology".into(), format!("{}nm", self.tech_nm)),
        ]
    }
}

/// A DVFS transition in flight on one core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// The level the core is moving to.
    pub target: PowerLevel,
    /// When the transition completes and `target` takes effect.
    pub done_at: SimTime,
}

/// Per-core dynamic state.
#[derive(Debug, Clone)]
pub struct Core {
    id: CoreId,
    /// The level currently applied to the clock/voltage rails.
    level: PowerLevel,
    /// An in-flight transition, if any. While pending, the core runs at
    /// `level`; when the simulation clock passes `done_at` the target is
    /// applied via [`Machine::settle`].
    pending: Option<Transition>,
    /// What the core is doing, for the power model.
    timeline: ActivityTimeline,
    /// Count of completed DVFS transitions (diagnostics).
    transitions_done: u64,
}

impl Core {
    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The operating point currently applied to the rails.
    pub fn level(&self) -> PowerLevel {
        self.level
    }

    /// The frequency the core is running at *right now* (old level during a
    /// pending transition).
    pub fn frequency(&self) -> Frequency {
        self.level.frequency
    }

    /// The in-flight transition, if any.
    pub fn pending_transition(&self) -> Option<Transition> {
        self.pending
    }

    /// The level the core will be at once any pending transition settles.
    pub fn target_level(&self) -> PowerLevel {
        self.pending.map(|t| t.target).unwrap_or(self.level)
    }

    /// Activity timeline for power integration.
    pub fn timeline(&self) -> &ActivityTimeline {
        &self.timeline
    }

    /// Number of completed DVFS transitions on this core.
    pub fn transitions_done(&self) -> u64 {
        self.transitions_done
    }
}

/// The simulated chip: an indexed collection of [`Core`]s plus the static
/// [`MachineConfig`] — and, when the scenario models shared-resource
/// interference, a [`MemorySubsystem`] component the cores contend on.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    cores: Vec<Core>,
    /// The shared memory subsystem, when attached. `None` is the
    /// uncontended legacy model: memory time elapses for free. Not part
    /// of [`MachineConfig`] (which is serialized in specs); contention
    /// config rides the scenario's own `memory` field.
    memory: Option<MemorySubsystem>,
}

impl Machine {
    /// Builds a machine with every core settled at the slow level and idle.
    pub fn new(config: MachineConfig) -> Self {
        let cores = (0..config.num_cores)
            .map(|i| Core {
                id: CoreId(i as u32),
                level: config.slow_level,
                pending: None,
                timeline: ActivityTimeline::new(config.slow_level, Activity::Idle),
                transitions_done: 0,
            })
            .collect();
        Machine {
            config,
            cores,
            memory: None,
        }
    }

    /// Builds a machine with the first `num_fast` cores settled at the fast
    /// level — the static heterogeneous configurations (8/16/24 fast cores)
    /// used for the FIFO and CATS experiments, where frequencies never change.
    pub fn new_static_hetero(config: MachineConfig, num_fast: usize) -> Self {
        assert!(
            num_fast <= config.num_cores,
            "num_fast {num_fast} exceeds core count {}",
            config.num_cores
        );
        let mut m = Machine::new(config);
        for i in 0..num_fast {
            let fast = m.config.fast_level;
            let core = &mut m.cores[i];
            core.level = fast;
            core.timeline = ActivityTimeline::new(fast, Activity::Idle);
        }
        m
    }

    /// The static configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Attaches a shared [`MemorySubsystem`] with `slots` bandwidth slots,
    /// replacing any previous one. The uncontended model is the default
    /// (no subsystem); engines attach one only for contended scenarios.
    pub fn attach_memory(&mut self, slots: usize) {
        self.memory = Some(MemorySubsystem::new(slots));
    }

    /// The attached memory subsystem, if any.
    pub fn memory(&self) -> Option<&MemorySubsystem> {
        self.memory.as_ref()
    }

    /// Mutable access to the attached memory subsystem, if any.
    pub fn memory_mut(&mut self) -> Option<&mut MemorySubsystem> {
        self.memory.as_mut()
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Immutable access to one core.
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.index()]
    }

    /// Iterates over all cores.
    pub fn cores(&self) -> impl Iterator<Item = &Core> {
        self.cores.iter()
    }

    /// Records that `core` changed activity (Busy/Idle/Halted) at `now`.
    pub fn set_activity(&mut self, core: CoreId, now: SimTime, activity: Activity) {
        let c = &mut self.cores[core.index()];
        c.timeline.record(now, c.level, activity);
    }

    /// Begins a DVFS transition on `core` towards `target`, completing after
    /// the machine's reconfiguration latency. Returns the completion time.
    ///
    /// If the core is already at (or already transitioning to) `target`, the
    /// call is a no-op and returns `None`. If a different transition is in
    /// flight, the new target supersedes it but the clock restarts — matching
    /// a DVFS controller that must re-ramp the rails.
    pub fn begin_transition(
        &mut self,
        core: CoreId,
        target: PowerLevel,
        now: SimTime,
    ) -> Option<SimTime> {
        let latency = self.config.reconfig_latency;
        let c = &mut self.cores[core.index()];
        if c.target_level() == target {
            return None;
        }
        let done_at = now + latency;
        c.pending = Some(Transition { target, done_at });
        Some(done_at)
    }

    /// Applies the pending transition on `core` if its completion time has
    /// arrived. Returns the newly applied level, or `None` if there was
    /// nothing to settle (e.g. the transition was superseded and the old
    /// completion event is stale).
    pub fn settle(&mut self, core: CoreId, now: SimTime) -> Option<PowerLevel> {
        let c = &mut self.cores[core.index()];
        match c.pending {
            Some(t) if t.done_at <= now => {
                c.pending = None;
                c.level = t.target;
                c.transitions_done += 1;
                c.timeline.record_level_change(now, t.target);
                Some(t.target)
            }
            _ => None,
        }
    }

    /// Closes all activity timelines at `end` (simulation finish) so the
    /// power model can integrate them.
    pub fn finish(&mut self, end: SimTime) {
        for c in &mut self.cores {
            c.timeline.close(end);
        }
    }

    /// Number of cores whose *target* level is the fast level — the quantity
    /// the power budget constrains. Counting targets rather than settled
    /// levels is what keeps concurrent reconfigurations from transiently
    /// exceeding the budget.
    pub fn accelerated_count(&self) -> usize {
        self.cores
            .iter()
            .filter(|c| c.target_level() == self.config.fast_level)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::small_test(4)
    }

    #[test]
    fn paper_table1_matches_paper() {
        let c = MachineConfig::paper_table1();
        assert_eq!(c.num_cores, 32);
        assert_eq!(c.fast_level.frequency.as_mhz(), 2000);
        assert_eq!(c.fast_level.voltage_mv, 1000);
        assert_eq!(c.slow_level.frequency.as_mhz(), 1000);
        assert_eq!(c.slow_level.voltage_mv, 800);
        assert_eq!(c.reconfig_latency, SimDuration::from_us(25));
        assert_eq!(c.noc_mesh, (4, 8));
        assert_eq!(c.tech_nm, 22);
        assert_eq!(c.table1_rows().len(), 12);
    }

    #[test]
    fn new_machine_starts_slow_and_idle() {
        let m = Machine::new(cfg());
        for c in m.cores() {
            assert_eq!(c.level(), PowerLevel::paper_slow());
            assert!(c.pending_transition().is_none());
        }
        assert_eq!(m.accelerated_count(), 0);
    }

    #[test]
    fn static_hetero_sets_first_n_fast() {
        let m = Machine::new_static_hetero(cfg(), 2);
        assert_eq!(m.core(CoreId(0)).level(), PowerLevel::paper_fast());
        assert_eq!(m.core(CoreId(1)).level(), PowerLevel::paper_fast());
        assert_eq!(m.core(CoreId(2)).level(), PowerLevel::paper_slow());
        assert_eq!(m.accelerated_count(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds core count")]
    fn static_hetero_rejects_too_many_fast() {
        Machine::new_static_hetero(cfg(), 5);
    }

    #[test]
    fn memory_subsystem_is_opt_in() {
        let mut m = Machine::new(cfg());
        assert!(m.memory().is_none(), "uncontended by default");
        m.attach_memory(2);
        assert_eq!(m.memory().unwrap().slots(), 2);
        assert!(m.memory_mut().unwrap().try_acquire());
        assert_eq!(m.memory().unwrap().in_use(), 1);
    }

    #[test]
    fn transition_takes_latency_and_settles() {
        let mut m = Machine::new(cfg());
        let t0 = SimTime::from_us(10);
        let done = m
            .begin_transition(CoreId(0), PowerLevel::paper_fast(), t0)
            .unwrap();
        assert_eq!(done, t0 + cfg().reconfig_latency);
        // Old frequency until settle.
        assert_eq!(m.core(CoreId(0)).frequency(), Frequency::from_ghz(1));
        // Target already counts as accelerated (budget accounting).
        assert_eq!(m.accelerated_count(), 1);
        // Settling before time does nothing.
        assert!(m.settle(CoreId(0), t0).is_none());
        let lvl = m.settle(CoreId(0), done).unwrap();
        assert_eq!(lvl, PowerLevel::paper_fast());
        assert_eq!(m.core(CoreId(0)).frequency(), Frequency::from_ghz(2));
        assert_eq!(m.core(CoreId(0)).transitions_done(), 1);
    }

    #[test]
    fn transition_to_current_level_is_noop() {
        let mut m = Machine::new(cfg());
        assert!(m
            .begin_transition(CoreId(0), PowerLevel::paper_slow(), SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn superseding_transition_restarts_clock() {
        let mut m = Machine::new(cfg());
        let t0 = SimTime::ZERO;
        let first = m
            .begin_transition(CoreId(0), PowerLevel::paper_fast(), t0)
            .unwrap();
        // Supersede with a return to slow before the first completes.
        let t1 = SimTime::from_ps(first.as_ps() / 2);
        let second = m
            .begin_transition(CoreId(0), PowerLevel::paper_slow(), t1)
            .unwrap();
        assert!(second > first);
        // The stale completion event must not settle anything.
        assert!(m.settle(CoreId(0), first).is_none());
        assert_eq!(m.settle(CoreId(0), second), Some(PowerLevel::paper_slow()));
        // Net effect: still slow, one (real) transition done.
        assert_eq!(m.core(CoreId(0)).level(), PowerLevel::paper_slow());
    }

    #[test]
    fn duplicate_target_while_pending_is_noop() {
        let mut m = Machine::new(cfg());
        m.begin_transition(CoreId(0), PowerLevel::paper_fast(), SimTime::ZERO)
            .unwrap();
        assert!(m
            .begin_transition(CoreId(0), PowerLevel::paper_fast(), SimTime::from_us(1))
            .is_none());
    }
}
