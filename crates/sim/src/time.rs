//! Simulated time at picosecond resolution.
//!
//! Using integer picoseconds keeps cycle arithmetic exact for the frequencies
//! the paper uses (1 cycle at 2 GHz = 500 ps, at 1 GHz = 1000 ps) and keeps
//! the simulation fully deterministic: there is no floating point in the
//! clock.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute point in simulated time, in picoseconds since simulation start.
///
/// A `u64` picosecond clock wraps after ~213 days of simulated time, far
/// beyond any experiment in this repository (full paper runs simulate less
/// than a minute).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Raw picoseconds since simulation start.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds since simulation start (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole microseconds since simulation start (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "time went backwards: {earlier} > {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "unbounded" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the duration by a float factor (rounds to nearest picosecond).
    ///
    /// Used by the progress model when re-projecting a task's completion after
    /// a frequency change; `factor` is a progress fraction in `[0, 1]`.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative duration scale {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The ratio of two durations as a float (`self / denom`).
    ///
    /// Returns 0.0 when `denom` is zero.
    #[inline]
    pub fn ratio(self, denom: SimDuration) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

/// Human-readable picosecond formatting with an adaptive unit.
fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps == 0 {
        write!(f, "0s")
    } else if ps < 1_000 {
        write!(f, "{ps}ps")
    } else if ps < 1_000_000 {
        write!(f, "{:.3}ns", ps as f64 / 1e3)
    } else if ps < 1_000_000_000 {
        write!(f, "{:.3}us", ps as f64 / 1e6)
    } else if ps < 1_000_000_000_000 {
        write!(f, "{:.3}ms", ps as f64 / 1e9)
    } else {
        write!(f, "{:.3}s", ps as f64 / 1e12)
    }
}

/// A core clock frequency, stored in megahertz.
///
/// The paper's machine uses 2000 MHz (fast, 1.0 V) and 1000 MHz (slow, 0.8 V);
/// both divide 10⁶ evenly so cycle durations are exact in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Frequency(u32);

impl Frequency {
    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    /// Panics if `mhz` is zero: a 0 MHz core would never retire work and every
    /// cycle-to-time conversion would divide by zero.
    #[inline]
    pub const fn from_mhz(mhz: u32) -> Self {
        assert!(mhz > 0, "frequency must be non-zero");
        Frequency(mhz)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: u32) -> Self {
        Frequency::from_mhz(ghz * 1000)
    }

    /// Frequency in megahertz.
    #[inline]
    pub const fn as_mhz(self) -> u32 {
        self.0
    }

    /// Frequency in kilohertz (the unit the Linux cpufreq interface uses).
    #[inline]
    pub const fn as_khz(self) -> u32 {
        self.0 * 1000
    }

    /// Frequency in hertz.
    #[inline]
    pub const fn as_hz(self) -> u64 {
        self.0 as u64 * 1_000_000
    }

    /// The wall time taken to execute `cycles` cycles at this frequency.
    ///
    /// Exact for frequencies that divide 10⁶ MHz·ps evenly (all paper
    /// frequencies); rounds up otherwise so work is never under-charged.
    #[inline]
    pub fn cycles_to_duration(self, cycles: u64) -> SimDuration {
        // ps = cycles * 1e6 / mhz, computed in u128 to avoid overflow for
        // large tasks, rounding up.
        let mhz = self.0 as u128;
        let ps = (cycles as u128 * 1_000_000).div_ceil(mhz);
        SimDuration::from_ps(ps.min(u64::MAX as u128) as u64)
    }

    /// The number of whole cycles this core retires in `dur`.
    #[inline]
    pub fn duration_to_cycles(self, dur: SimDuration) -> u64 {
        let ps = dur.as_ps() as u128;
        ((ps * self.0 as u128) / 1_000_000).min(u64::MAX as u128) as u64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{}GHz", self.0 / 1000)
        } else {
            write!(f, "{}MHz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_unit_conversions_round_trip() {
        let t = SimTime::from_us(25);
        assert_eq!(t.as_ps(), 25_000_000);
        assert_eq!(t.as_ns(), 25_000);
        assert_eq!(t.as_us(), 25);
        assert_eq!(SimTime::from_ms(3).as_us(), 3_000);
        assert_eq!(SimTime::from_ns(7).as_ps(), 7_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_ns(10);
        let b = SimDuration::from_ns(4);
        assert_eq!((a + b).as_ns(), 14);
        assert_eq!((a - b).as_ns(), 6);
        assert_eq!(
            a.saturating_sub(SimDuration::from_ns(100)),
            SimDuration::ZERO
        );
        let mut c = a;
        c += b;
        assert_eq!(c.as_ns(), 14);
        c -= b;
        assert_eq!(c.as_ns(), 10);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_ns(100) + SimDuration::from_ns(50);
        assert_eq!(t.as_ns(), 150);
        assert_eq!(t.since(SimTime::from_ns(100)).as_ns(), 50);
        assert_eq!(
            SimTime::from_ns(10).saturating_since(SimTime::from_ns(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn cycles_at_paper_frequencies_are_exact() {
        let fast = Frequency::from_ghz(2);
        let slow = Frequency::from_ghz(1);
        // 1 cycle at 2 GHz = 500 ps; at 1 GHz = 1000 ps.
        assert_eq!(fast.cycles_to_duration(1).as_ps(), 500);
        assert_eq!(slow.cycles_to_duration(1).as_ps(), 1000);
        // 2 M cycles at 2 GHz = 1 ms.
        assert_eq!(fast.cycles_to_duration(2_000_000).as_ns(), 1_000_000);
        // Round trip.
        assert_eq!(
            fast.duration_to_cycles(fast.cycles_to_duration(12345)),
            12345
        );
    }

    #[test]
    fn cycles_round_up_for_awkward_frequencies() {
        let f = Frequency::from_mhz(1500);
        // 1 cycle at 1.5 GHz = 666.67 ps, must round to 667 (never under-charge).
        assert_eq!(f.cycles_to_duration(1).as_ps(), 667);
        // 3 cycles = exactly 2000 ps.
        assert_eq!(f.cycles_to_duration(3).as_ps(), 2000);
    }

    #[test]
    fn large_cycle_counts_do_not_overflow() {
        let f = Frequency::from_ghz(2);
        let d = f.cycles_to_duration(u64::MAX / 2);
        assert!(d.as_ps() > 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_ps(12).to_string(), "12ps");
        assert_eq!(SimTime::from_ns(1).to_string(), "1.000ns");
        assert_eq!(SimTime::from_us(25).to_string(), "25.000us");
        assert_eq!(SimTime::from_ms(15).to_string(), "15.000ms");
        assert_eq!(Frequency::from_ghz(2).to_string(), "2GHz");
        assert_eq!(Frequency::from_mhz(1500).to_string(), "1500MHz");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_ps(1000);
        assert_eq!(d.mul_f64(0.5).as_ps(), 500);
        assert_eq!(d.mul_f64(0.3335).as_ps(), 334); // rounds to nearest
        assert_eq!(d.mul_f64(0.0).as_ps(), 0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(SimDuration::from_ns(5).ratio(SimDuration::ZERO), 0.0);
        let r = SimDuration::from_ns(1).ratio(SimDuration::from_ns(4));
        assert!((r - 0.25).abs() < 1e-12);
    }
}
