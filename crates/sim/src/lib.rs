//! # cata-sim — discrete-event multicore simulator substrate
//!
//! The CATA paper (Castillo et al., IPDPS 2016) evaluates its proposals on a
//! gem5 full-system simulation of a 32-core x86 processor. This crate is the
//! from-scratch stand-in for that substrate: a deterministic discrete-event
//! simulation (DES) kernel plus a task-granularity machine model with per-core
//! DVFS.
//!
//! The model is intentionally at *task* granularity, not instruction
//! granularity: every effect the paper's evaluation attributes to the
//! architecture — task durations as a function of core frequency, the 25 µs
//! DVFS transition latency, reconfiguration serialization, idle/halted core
//! states — is represented here, while micro-architectural detail (branch
//! predictors, cache hit latencies from Table I) only informs the power-model
//! constants in `cata-power`.
//!
//! ## Components
//!
//! - [`time`]: picosecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]) and exact frequency/cycle arithmetic ([`Frequency`]).
//! - [`event`]: deterministic event queues behind the [`event::EventSource`]
//!   trait — a binary-heap backend and the default calendar-wheel backend
//!   ([`event::EventQueue`] is the dispatching facade). Ties are broken by
//!   insertion sequence, and pop order is a *total* order, so every backend
//!   produces bit-identical simulations.
//! - [`machine`]: the simulated chip ([`machine::Machine`]): per-core
//!   frequency/voltage state, DVFS transitions in flight, and the Table I
//!   configuration ([`machine::MachineConfig`]).
//! - [`memory`]: the shared memory subsystem ([`memory::MemorySubsystem`])
//!   the machine optionally carries — bandwidth slots that co-running
//!   tasks contend for, arbitrated by a pluggable
//!   [`memory::ArbitrationPolicy`] (FIFO / criticality-first /
//!   round-robin).
//! - [`seeded`]: the one SplitMix64 / FNV-1a implementation every seeded
//!   stream and content digest in the workspace shares.
//! - [`progress`]: the task execution-time model ([`progress::ExecProfile`],
//!   [`progress::RunningTask`]): frequency-scaled CPU work plus
//!   frequency-invariant memory time, with support for mid-task frequency
//!   changes and blocking (halt) intervals.
//! - [`activity`]: per-core activity timelines consumed by the power model.
//! - [`stats`]: counters and latency histograms used by the evaluation.
//! - [`trace`]: optional structured event traces for tests and debugging.
//!
//! ## Quick example
//!
//! ```
//! use cata_sim::machine::{Machine, MachineConfig};
//! use cata_sim::progress::{ExecProfile, RunningTask};
//! use cata_sim::time::SimTime;
//!
//! let cfg = MachineConfig::paper_table1();
//! let machine = Machine::new(cfg);
//! assert_eq!(machine.num_cores(), 32);
//!
//! // A task with 2 M cycles of CPU work and 100 µs of memory time takes
//! // 2.1 ms at the slow level (1 GHz) every core starts at.
//! let prof = ExecProfile::new(2_000_000, 100_000_000);
//! let task = RunningTask::start(&prof, SimTime::ZERO, machine.core(0usize.into()).frequency());
//! let finish = task.next_milestone().unwrap().time();
//! assert_eq!(finish.as_ns(), 2_100_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activity;
pub mod event;
pub mod machine;
pub mod memory;
pub mod progress;
pub mod seeded;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{EventBackend, EventQueue, EventSource};
pub use machine::{CoreId, Machine, MachineConfig, PowerLevel};
pub use memory::{ArbitrationPolicy, MemRequest, MemorySubsystem};
pub use seeded::SplitMix64;
pub use time::{Frequency, SimDuration, SimTime};
