//! The task execution-time model.
//!
//! A task's cost has two parts:
//!
//! - `cpu_cycles`: core-clocked work, whose wall time scales inversely with
//!   the core frequency (doubling frequency halves it);
//! - `mem_ps`: memory-bound time (cache misses, NoC, DRAM), which is
//!   frequency-invariant — the uncore is on its own clock.
//!
//! So a task's duration at frequency `f` is `cpu_cycles/f + mem_ps`, making
//! the fast/slow speedup of a task strictly less than the 2× frequency ratio
//! unless the task is purely compute bound. This is what makes acceleration
//! decisions non-trivial, exactly as on the paper's simulated machine.
//!
//! Because CATA changes core frequencies *while tasks run*, the model
//! supports mid-task frequency changes through a progress integral: at any
//! instant a task has completed a fraction `p ∈ [0, 1]` of its work, and
//! progress accrues at rate `1/duration(f_current)` per unit time. On a
//! frequency change the remaining wall time is re-projected as
//! `(1 − p) · duration(f_new)`.
//!
//! Tasks may also carry **blocking points** (§V-D of the paper: I/O, page
//! faults, kernel locks): at a given progress fraction the task stops and the
//! core halts (C1) for a fixed wall-clock interval. TurboMode exploits these
//! halts; CATA does not see them — reproducing the paper's observation that
//! TurboMode can reclaim the budget of blocked-but-accelerated tasks.

use crate::time::{Frequency, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A point during a task's execution where it blocks in the kernel and the
/// core halts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockPoint {
    /// Progress fraction in `(0, 1)` at which the task blocks.
    pub at_progress: f64,
    /// Wall-clock time the task stays blocked (frequency-invariant).
    pub duration: SimDuration,
}

/// The static cost description of one task instance.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecProfile {
    /// Core-clocked work in cycles.
    pub cpu_cycles: u64,
    /// Frequency-invariant memory/uncore time, in picoseconds.
    pub mem_ps: u64,
    /// Kernel-blocking points, sorted by `at_progress` ascending.
    pub blocks: Vec<BlockPoint>,
}

impl ExecProfile {
    /// A profile with no blocking points.
    pub fn new(cpu_cycles: u64, mem_ps: u64) -> Self {
        ExecProfile {
            cpu_cycles,
            mem_ps,
            blocks: Vec::new(),
        }
    }

    /// Adds a blocking point, keeping the list sorted.
    ///
    /// # Panics
    /// Panics if `at_progress` is outside `(0, 1)`.
    pub fn with_block(mut self, at_progress: f64, duration: SimDuration) -> Self {
        assert!(
            at_progress > 0.0 && at_progress < 1.0,
            "block point must fall strictly inside the task, got {at_progress}"
        );
        self.blocks.push(BlockPoint {
            at_progress,
            duration,
        });
        self.blocks
            .sort_by(|a, b| a.at_progress.partial_cmp(&b.at_progress).unwrap());
        self
    }

    /// The run time (excluding blocks) of this profile at frequency `f`.
    pub fn duration_at(&self, f: Frequency) -> SimDuration {
        f.cycles_to_duration(self.cpu_cycles) + SimDuration::from_ps(self.mem_ps)
    }

    /// Total blocked wall time.
    pub fn total_block_time(&self) -> SimDuration {
        self.blocks.iter().map(|b| b.duration).sum()
    }

    /// The fraction of the task's slow-frequency duration that is
    /// frequency-invariant — its "memory-boundness". 0 = pure compute.
    pub fn memory_boundness(&self, slow: Frequency) -> f64 {
        SimDuration::from_ps(self.mem_ps).ratio(self.duration_at(slow))
    }
}

/// What the executor should schedule next for a running task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Milestone {
    /// The task will finish (all work and blocks done) at this time.
    Completion(SimTime),
    /// The task will hit a blocking point and halt at this time.
    BlockStart(SimTime),
    /// The task is currently blocked and resumes at this time.
    BlockEnd(SimTime),
}

impl Milestone {
    /// The instant this milestone fires.
    pub fn time(self) -> SimTime {
        match self {
            Milestone::Completion(t) | Milestone::BlockStart(t) | Milestone::BlockEnd(t) => t,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RunState {
    Running,
    Blocked { until: SimTime },
    Finished,
}

/// The dynamic execution state of one task on one core.
///
/// The owning executor drives it with three operations:
/// [`next_milestone`](Self::next_milestone) to learn what event to schedule,
/// [`advance_to`](Self::advance_to) when that event fires, and
/// [`set_frequency`](Self::set_frequency) when a DVFS change settles under it.
/// Every mutation bumps [`generation`](Self::generation) so the executor can
/// discard stale scheduled events.
///
/// The profile is *borrowed* from its owner (normally the `TaskGraph`):
/// starting a task is a hot-path operation in the executor, and cloning a
/// profile — block-point `Vec` included — per assignment is exactly the
/// kind of steady-state allocation the engine refuses to pay. All other
/// state is plain `Copy` data, so cloning a `RunningTask` is free.
#[derive(Debug, Clone, Copy)]
pub struct RunningTask<'p> {
    profile: &'p ExecProfile,
    freq: Frequency,
    progress: f64,
    last_update: SimTime,
    next_block: usize,
    state: RunState,
    generation: u64,
    started_at: SimTime,
}

impl<'p> RunningTask<'p> {
    /// Begins executing `profile` at `now` on a core running at `freq`.
    pub fn start(profile: &'p ExecProfile, now: SimTime, freq: Frequency) -> Self {
        RunningTask {
            profile,
            freq,
            progress: 0.0,
            last_update: now,
            next_block: 0,
            state: RunState::Running,
            generation: 0,
            started_at: now,
        }
    }

    /// The profile being executed.
    pub fn profile(&self) -> &'p ExecProfile {
        self.profile
    }

    /// Monotonic counter bumped on every state change; events scheduled
    /// against an older generation are stale and must be ignored.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// When the task started.
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// Current progress fraction in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        self.progress
    }

    /// True once the task has completed all work and blocks.
    pub fn is_finished(&self) -> bool {
        self.state == RunState::Finished
    }

    /// True while the task is halted at a blocking point.
    pub fn is_blocked(&self) -> bool {
        matches!(self.state, RunState::Blocked { .. })
    }

    /// The frequency the task is currently being executed at.
    pub fn frequency(&self) -> Frequency {
        self.freq
    }

    /// The progress fraction at which the task next stops running: the next
    /// block point, or 1.0 (completion).
    fn next_stop_progress(&self) -> f64 {
        self.profile
            .blocks
            .get(self.next_block)
            .map(|b| b.at_progress)
            .unwrap_or(1.0)
    }

    /// The next event the executor should schedule for this task, given the
    /// current frequency. Returns `None` once finished.
    pub fn next_milestone(&self) -> Option<Milestone> {
        match self.state {
            RunState::Finished => None,
            RunState::Blocked { until } => Some(Milestone::BlockEnd(until)),
            RunState::Running => {
                let dur = self.profile.duration_at(self.freq);
                let target = self.next_stop_progress();
                let remaining = dur.mul_f64((target - self.progress).max(0.0));
                let at = self.last_update + remaining;
                if target >= 1.0 {
                    Some(Milestone::Completion(at))
                } else {
                    Some(Milestone::BlockStart(at))
                }
            }
        }
    }

    /// Advances internal progress to `now` and applies any milestone that has
    /// been reached. Returns the milestone that fired at `now`, if any.
    ///
    /// The executor calls this when a scheduled milestone event (matching the
    /// current generation) fires.
    pub fn advance_to(&mut self, now: SimTime) -> Option<Milestone> {
        match self.state {
            RunState::Finished => None,
            RunState::Blocked { until } => {
                if now >= until {
                    // Resume running; progress was frozen while blocked.
                    self.state = RunState::Running;
                    self.last_update = now;
                    self.generation += 1;
                    Some(Milestone::BlockEnd(now))
                } else {
                    None
                }
            }
            RunState::Running => {
                self.accrue(now);
                let target = self.next_stop_progress();
                // "Reached" is decided in the *time* domain: if the wall time
                // still needed to hit the target is under one picosecond, the
                // milestone has arrived — comparing progress fractions alone
                // livelocks when the remaining time rounds to zero but the
                // fraction gap exceeds any fixed epsilon (long vs. short
                // tasks need different fraction tolerances).
                let dur_ps = self.profile.duration_at(self.freq).as_ps() as f64;
                let remaining_ps = (target - self.progress).max(0.0) * dur_ps;
                if remaining_ps < 1.0 || self.progress + PROGRESS_EPS >= target {
                    self.progress = target;
                    self.generation += 1;
                    if target >= 1.0 {
                        self.state = RunState::Finished;
                        Some(Milestone::Completion(now))
                    } else {
                        let block = self.profile.blocks[self.next_block];
                        self.next_block += 1;
                        let until = now + block.duration;
                        self.state = RunState::Blocked { until };
                        Some(Milestone::BlockStart(now))
                    }
                } else {
                    None
                }
            }
        }
    }

    /// Applies a frequency change at `now`: accrues progress at the old
    /// frequency up to `now`, then switches rates. Safe to call in any state.
    pub fn set_frequency(&mut self, now: SimTime, freq: Frequency) {
        if freq == self.freq {
            return;
        }
        if self.state == RunState::Running {
            self.accrue(now);
            self.last_update = now;
        }
        self.freq = freq;
        self.generation += 1;
    }

    fn accrue(&mut self, now: SimTime) {
        let dur = self.profile.duration_at(self.freq);
        let elapsed = now.saturating_since(self.last_update);
        if dur.is_zero() {
            // Zero-cost task: complete immediately.
            self.progress = 1.0;
        } else {
            self.progress = (self.progress + elapsed.ratio(dur)).min(1.0);
        }
        self.last_update = now;
    }
}

/// Tolerance for floating-point progress comparisons. A task within this
/// fraction of a milestone when its event fires is considered to have reached
/// it (the error corresponds to sub-picosecond time).
const PROGRESS_EPS: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    const GHZ1: Frequency = Frequency::from_ghz(1);
    const GHZ2: Frequency = Frequency::from_ghz(2);

    #[test]
    fn duration_scales_only_cpu_part() {
        // 2 M cycles + 100 µs memory.
        let p = ExecProfile::new(2_000_000, 100_000_000);
        assert_eq!(p.duration_at(GHZ1), SimDuration::from_us(2100));
        assert_eq!(p.duration_at(GHZ2), SimDuration::from_us(1100));
        let mb = p.memory_boundness(GHZ1);
        assert!((mb - 100.0 / 2100.0).abs() < 1e-12);
    }

    #[test]
    fn simple_run_to_completion() {
        let p = ExecProfile::new(1_000_000, 0); // 1 ms at 1 GHz
        let mut t = RunningTask::start(&p, SimTime::ZERO, GHZ1);
        let m = t.next_milestone().unwrap();
        assert_eq!(m, Milestone::Completion(SimTime::from_ms(1)));
        let fired = t.advance_to(m.time()).unwrap();
        assert_eq!(fired, Milestone::Completion(SimTime::from_ms(1)));
        assert!(t.is_finished());
        assert!(t.next_milestone().is_none());
    }

    #[test]
    fn mid_task_acceleration_shortens_remaining_time() {
        // 2 M cycles at 1 GHz = 2 ms. Accelerate at 1 ms (progress 0.5):
        // remaining 1 M cycles at 2 GHz = 0.5 ms → finishes at 1.5 ms.
        let p = ExecProfile::new(2_000_000, 0);
        let mut t = RunningTask::start(&p, SimTime::ZERO, GHZ1);
        let g0 = t.generation();
        t.set_frequency(SimTime::from_ms(1), GHZ2);
        assert!(
            t.generation() > g0,
            "freq change must invalidate old events"
        );
        assert!((t.progress() - 0.5).abs() < 1e-9);
        let m = t.next_milestone().unwrap();
        assert_eq!(m.time(), SimTime::from_us(1500));
        t.advance_to(m.time());
        assert!(t.is_finished());
    }

    #[test]
    fn mid_task_deceleration_stretches_remaining_time() {
        // 2 M cycles at 2 GHz = 1 ms. Decelerate at 0.5 ms (progress 0.5):
        // remaining 1 M cycles at 1 GHz = 1 ms → finishes at 1.5 ms.
        let p = ExecProfile::new(2_000_000, 0);
        let mut t = RunningTask::start(&p, SimTime::ZERO, GHZ2);
        t.set_frequency(SimTime::from_us(500), GHZ1);
        let m = t.next_milestone().unwrap();
        assert_eq!(m.time(), SimTime::from_us(1500));
    }

    #[test]
    fn memory_time_is_not_scaled_by_frequency_change() {
        // Pure-memory task: 1 ms regardless of frequency.
        let p = ExecProfile::new(0, SimDuration::from_ms(1).as_ps());
        let mut t = RunningTask::start(&p, SimTime::ZERO, GHZ1);
        t.set_frequency(SimTime::from_us(300), GHZ2);
        let m = t.next_milestone().unwrap();
        assert_eq!(m.time(), SimTime::from_ms(1));
    }

    #[test]
    fn blocking_point_halts_then_resumes() {
        // 1 M cycles at 1 GHz = 1 ms, blocks at p=0.5 for 2 ms.
        let p = ExecProfile::new(1_000_000, 0).with_block(0.5, SimDuration::from_ms(2));
        let mut t = RunningTask::start(&p, SimTime::ZERO, GHZ1);

        let m1 = t.next_milestone().unwrap();
        assert_eq!(m1, Milestone::BlockStart(SimTime::from_us(500)));
        assert_eq!(t.advance_to(m1.time()), Some(m1));
        assert!(t.is_blocked());

        let m2 = t.next_milestone().unwrap();
        assert_eq!(m2, Milestone::BlockEnd(SimTime::from_us(2500)));
        assert_eq!(t.advance_to(m2.time()), Some(m2));
        assert!(!t.is_blocked());

        let m3 = t.next_milestone().unwrap();
        assert_eq!(m3, Milestone::Completion(SimTime::from_us(3000)));
        t.advance_to(m3.time());
        assert!(t.is_finished());
    }

    #[test]
    fn frequency_change_while_blocked_applies_after_resume() {
        let p = ExecProfile::new(1_000_000, 0).with_block(0.5, SimDuration::from_ms(1));
        let mut t = RunningTask::start(&p, SimTime::ZERO, GHZ1);
        let m1 = t.next_milestone().unwrap();
        t.advance_to(m1.time()); // blocked at 500 µs until 1500 µs
        t.set_frequency(SimTime::from_us(700), GHZ2);
        // Block end unchanged by frequency.
        let m2 = t.next_milestone().unwrap();
        assert_eq!(m2.time(), SimTime::from_us(1500));
        t.advance_to(m2.time());
        // Remaining 0.5 M cycles at 2 GHz = 250 µs.
        let m3 = t.next_milestone().unwrap();
        assert_eq!(m3.time(), SimTime::from_us(1750));
    }

    #[test]
    fn zero_cost_task_completes_immediately() {
        let p = ExecProfile::new(0, 0);
        let mut t = RunningTask::start(&p, SimTime::from_us(3), GHZ1);
        let m = t.next_milestone().unwrap();
        assert_eq!(m, Milestone::Completion(SimTime::from_us(3)));
        t.advance_to(m.time());
        assert!(t.is_finished());
    }

    #[test]
    fn early_advance_does_not_fire_milestone() {
        let p = ExecProfile::new(1_000_000, 0);
        let mut t = RunningTask::start(&p, SimTime::ZERO, GHZ1);
        assert_eq!(t.advance_to(SimTime::from_us(400)), None);
        assert!((t.progress() - 0.4).abs() < 1e-9);
        // Milestone from the partial state still lands at 1 ms total.
        let m = t.next_milestone().unwrap();
        assert_eq!(m.time(), SimTime::from_ms(1));
    }

    #[test]
    fn multiple_blocks_fire_in_order() {
        let p = ExecProfile::new(1_000_000, 0)
            .with_block(0.75, SimDuration::from_us(10))
            .with_block(0.25, SimDuration::from_us(20));
        assert!(p.blocks[0].at_progress < p.blocks[1].at_progress);
        let mut t = RunningTask::start(&p, SimTime::ZERO, GHZ1);
        let mut kinds = Vec::new();
        while let Some(m) = t.next_milestone() {
            t.advance_to(m.time());
            kinds.push(std::mem::discriminant(&m));
        }
        assert_eq!(kinds.len(), 5); // 2×(start+end) + completion
        assert_eq!(p_total(&t), 1.0);
        fn p_total(t: &RunningTask<'_>) -> f64 {
            t.progress()
        }
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn block_at_zero_progress_rejected() {
        let _ = ExecProfile::new(1, 0).with_block(0.0, SimDuration::from_us(1));
    }
}
