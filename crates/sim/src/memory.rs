//! The shared memory subsystem: a componentized model of bandwidth
//! contention between co-running tasks.
//!
//! The base machine model treats a task's memory time (`mem_ps` in its
//! [`ExecProfile`](crate::progress::ExecProfile)) as free, uncontended
//! uncore time — co-runners never slow each other down. This module makes
//! the shared resource explicit: the [`Machine`](crate::machine::Machine)
//! can carry a [`MemorySubsystem`] with a configurable number of
//! *bandwidth slots*. A task with memory demand must hold a slot for its
//! demand's duration while its body runs; when more tasks demand memory
//! than slots exist, the surplus queue as [`MemRequest`]s and their wall
//! time stretches — co-runner interference becomes real and measurable.
//!
//! Which waiter is served when a slot frees is an [`ArbitrationPolicy`]
//! decision — the pluggable policy family the criticality-aware
//! multiprocessor literature motivates: FIFO is the oblivious baseline,
//! criticality-first is the CAM idea (critical requests overtake), and
//! round-robin is the fairness reference. Policies are deterministic
//! functions of the waiter queue, so simulations stay bit-identical per
//! seed regardless of arbitration key.

use crate::machine::CoreId;

/// One queued memory request: the core whose task is waiting for a
/// bandwidth slot, with everything a policy may arbitrate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// The core whose task is parked waiting for a slot.
    pub core: CoreId,
    /// Criticality level of the waiting task (0 = non-critical).
    pub crit_level: u8,
    /// The task's memory demand in picoseconds (how long it will hold the
    /// slot once granted).
    pub mem_ps: u64,
    /// Arrival sequence number — the global FIFO order and the
    /// deterministic tie-break every policy shares.
    pub seq: u64,
}

/// Picks which waiter a freed slot goes to.
///
/// `pick` receives the queue in arrival order (ascending `seq`) and
/// returns the index of the request to grant. It is only called on a
/// non-empty queue. Implementations may keep state (round-robin does) but
/// must be deterministic: same queue + same internal state ⇒ same pick.
pub trait ArbitrationPolicy: Send {
    /// Registry key / display name of the policy.
    fn name(&self) -> &'static str;
    /// Index into `waiters` of the request to grant next.
    fn pick(&mut self, waiters: &[MemRequest]) -> usize;
}

/// FIFO arbitration: requests are served strictly in arrival order — the
/// criticality-oblivious baseline.
#[derive(Debug, Default)]
pub struct FifoArbitration;

impl ArbitrationPolicy for FifoArbitration {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick(&mut self, _waiters: &[MemRequest]) -> usize {
        // Waiters are kept in arrival order; the head is the oldest.
        0
    }
}

/// Criticality-first arbitration: the highest criticality level wins,
/// FIFO among equals — critical memory requests overtake non-critical
/// ones through the shared resource (the CAM idea).
#[derive(Debug, Default)]
pub struct CritFirstArbitration;

impl ArbitrationPolicy for CritFirstArbitration {
    fn name(&self) -> &'static str {
        "crit-first"
    }

    fn pick(&mut self, waiters: &[MemRequest]) -> usize {
        let mut best = 0;
        for (i, w) in waiters.iter().enumerate().skip(1) {
            // Strictly-greater keeps the earliest-seq winner among equal
            // levels (waiters are in ascending seq order).
            if w.crit_level > waiters[best].crit_level {
                best = i;
            }
        }
        best
    }
}

/// Round-robin arbitration: cyclic over core ids, resuming after the last
/// granted core — the fairness reference point.
#[derive(Debug)]
pub struct RoundRobinArbitration {
    /// Core id granted most recently; the cycle resumes after it.
    last: u32,
}

impl Default for RoundRobinArbitration {
    fn default() -> Self {
        // First grant favors the lowest core id: distance from u32::MAX
        // wraps to `core + 0`.
        RoundRobinArbitration { last: u32::MAX }
    }
}

impl ArbitrationPolicy for RoundRobinArbitration {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, waiters: &[MemRequest]) -> usize {
        let start = self.last.wrapping_add(1);
        let mut best = 0;
        let mut best_dist = waiters[0].core.0.wrapping_sub(start);
        for (i, w) in waiters.iter().enumerate().skip(1) {
            let dist = w.core.0.wrapping_sub(start);
            // Strictly-less keeps the earliest seq among duplicate core
            // ids (possible transiently in open-system reuse).
            if dist < best_dist {
                best = i;
                best_dist = dist;
            }
        }
        self.last = waiters[best].core.0;
        best
    }
}

/// The shared memory subsystem: `slots` units of bandwidth, a usage
/// count, and the queue of waiting requests in arrival order.
///
/// The subsystem is mechanism only — *who* waits and *who* is granted is
/// the engine's (and its [`ArbitrationPolicy`]'s) decision. All methods
/// are O(waiters) or better and allocation-free in steady state.
#[derive(Debug, Clone)]
pub struct MemorySubsystem {
    slots: usize,
    in_use: usize,
    waiters: Vec<MemRequest>,
    next_seq: u64,
}

impl MemorySubsystem {
    /// A subsystem with `slots` bandwidth slots (must be ≥ 1: the
    /// uncontended model is "no subsystem at all", not "many slots").
    pub fn new(slots: usize) -> Self {
        assert!(slots >= 1, "a memory subsystem needs at least one slot");
        MemorySubsystem {
            slots,
            in_use: 0,
            waiters: Vec::new(),
            next_seq: 0,
        }
    }

    /// Total bandwidth slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Slots currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// True if a slot is free right now.
    pub fn has_free_slot(&self) -> bool {
        self.in_use < self.slots
    }

    /// The queue of waiting requests, in arrival order.
    pub fn waiters(&self) -> &[MemRequest] {
        &self.waiters
    }

    /// Acquires a slot if one is free. Returns whether it was granted.
    pub fn try_acquire(&mut self) -> bool {
        if self.in_use < self.slots {
            self.in_use += 1;
            true
        } else {
            false
        }
    }

    /// Releases a held slot.
    pub fn release(&mut self) {
        debug_assert!(self.in_use > 0, "releasing a slot that was never held");
        self.in_use = self.in_use.saturating_sub(1);
    }

    /// Appends a request to the waiter queue, stamping its arrival
    /// sequence number. Returns the stamped request.
    pub fn enqueue(&mut self, core: CoreId, crit_level: u8, mem_ps: u64) -> MemRequest {
        let req = MemRequest {
            core,
            crit_level,
            mem_ps,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.waiters.push(req);
        req
    }

    /// Grants a freed slot to the policy's pick, removing it from the
    /// queue (arrival order of the rest is preserved). Returns `None`
    /// when nothing waits or nothing is free.
    pub fn grant(&mut self, policy: &mut dyn ArbitrationPolicy) -> Option<MemRequest> {
        if self.waiters.is_empty() || self.in_use >= self.slots {
            return None;
        }
        let idx = policy.pick(&self.waiters);
        debug_assert!(idx < self.waiters.len(), "policy picked out of range");
        let req = self.waiters.remove(idx.min(self.waiters.len() - 1));
        self.in_use += 1;
        Some(req)
    }

    /// Removes `core`'s queued request (fault injection: a failing core
    /// abandons its wait). Returns the cancelled request, if any was
    /// queued.
    pub fn cancel_core(&mut self, core: CoreId) -> Option<MemRequest> {
        let idx = self.waiters.iter().position(|w| w.core == core)?;
        Some(self.waiters.remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(core: u32, level: u8) -> (CoreId, u8, u64) {
        (CoreId(core), level, 1000)
    }

    #[test]
    fn slots_are_counted() {
        let mut m = MemorySubsystem::new(2);
        assert!(m.try_acquire());
        assert!(m.try_acquire());
        assert!(!m.try_acquire());
        assert_eq!(m.in_use(), 2);
        m.release();
        assert!(m.has_free_slot());
        assert!(m.try_acquire());
    }

    #[test]
    fn fifo_grants_in_arrival_order() {
        let mut m = MemorySubsystem::new(1);
        assert!(m.try_acquire());
        for (c, l, d) in [req(3, 1), req(1, 0), req(2, 1)] {
            m.enqueue(c, l, d);
        }
        let mut p = FifoArbitration;
        m.release();
        assert_eq!(m.grant(&mut p).unwrap().core, CoreId(3));
        m.release();
        assert_eq!(m.grant(&mut p).unwrap().core, CoreId(1));
        m.release();
        assert_eq!(m.grant(&mut p).unwrap().core, CoreId(2));
        assert!(m.grant(&mut p).is_none());
    }

    #[test]
    fn crit_first_overtakes_fifo_among_levels() {
        let mut m = MemorySubsystem::new(1);
        assert!(m.try_acquire());
        for (c, l, d) in [req(0, 0), req(1, 2), req(2, 2), req(3, 1)] {
            m.enqueue(c, l, d);
        }
        let mut p = CritFirstArbitration;
        m.release();
        // Highest level wins; FIFO among the two level-2 waiters.
        assert_eq!(m.grant(&mut p).unwrap().core, CoreId(1));
        m.release();
        assert_eq!(m.grant(&mut p).unwrap().core, CoreId(2));
        m.release();
        assert_eq!(m.grant(&mut p).unwrap().core, CoreId(3));
        m.release();
        assert_eq!(m.grant(&mut p).unwrap().core, CoreId(0));
    }

    #[test]
    fn round_robin_cycles_core_ids() {
        let mut m = MemorySubsystem::new(1);
        assert!(m.try_acquire());
        for (c, l, d) in [req(2, 0), req(0, 0), req(3, 0)] {
            m.enqueue(c, l, d);
        }
        let mut p = RoundRobinArbitration::default();
        m.release();
        // Fresh policy: the cycle starts at core 0.
        assert_eq!(m.grant(&mut p).unwrap().core, CoreId(0));
        m.release();
        // After 0, the next core id in cyclic order is 2.
        assert_eq!(m.grant(&mut p).unwrap().core, CoreId(2));
        m.release();
        assert_eq!(m.grant(&mut p).unwrap().core, CoreId(3));
    }

    #[test]
    fn cancel_removes_the_queued_request() {
        let mut m = MemorySubsystem::new(1);
        assert!(m.try_acquire());
        m.enqueue(CoreId(0), 0, 10);
        m.enqueue(CoreId(1), 0, 10);
        assert_eq!(m.cancel_core(CoreId(0)).unwrap().core, CoreId(0));
        assert!(m.cancel_core(CoreId(0)).is_none());
        assert_eq!(m.waiters().len(), 1);
    }

    #[test]
    fn grant_requires_a_free_slot() {
        let mut m = MemorySubsystem::new(1);
        assert!(m.try_acquire());
        m.enqueue(CoreId(0), 0, 10);
        let mut p = FifoArbitration;
        assert!(m.grant(&mut p).is_none(), "no free slot yet");
        m.release();
        assert!(m.grant(&mut p).is_some());
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_is_rejected() {
        MemorySubsystem::new(0);
    }
}
