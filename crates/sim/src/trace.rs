//! Structured simulation traces.
//!
//! Traces are the simulator's equivalent of the paper's Paraver timelines:
//! an ordered record of scheduling and reconfiguration events used by tests
//! (to assert causality and budget invariants at every instant) and by the
//! examples (to visualize schedules). Tracing is off by default and costs
//! nothing when disabled.

use crate::machine::{CoreId, PowerLevel};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One traced simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A task started executing on a core. The `bool` is its criticality.
    TaskStart {
        /// Executing core.
        core: CoreId,
        /// Task identifier (runtime-assigned).
        task: u32,
        /// Whether the runtime considers the task critical.
        critical: bool,
    },
    /// A task finished.
    TaskEnd {
        /// Executing core.
        core: CoreId,
        /// Task identifier.
        task: u32,
    },
    /// A DVFS transition was requested for a core.
    ReconfigRequest {
        /// Target core.
        core: CoreId,
        /// Requested level.
        target: PowerLevel,
    },
    /// A DVFS transition settled and the new level took effect.
    ReconfigApplied {
        /// Target core.
        core: CoreId,
        /// Applied level.
        level: PowerLevel,
    },
    /// A core entered the halted (C1) state.
    Halt {
        /// Halting core.
        core: CoreId,
    },
    /// A core left the halted state.
    Wake {
        /// Waking core.
        core: CoreId,
    },
}

/// A time-stamped trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// When the event occurred.
    pub time: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// An event trace. Construct with [`Trace::enabled`] or [`Trace::disabled`];
/// a disabled trace drops all records.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Trace {
    /// A trace that records events.
    pub fn enabled() -> Self {
        Trace {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// A trace that drops events (zero cost).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `event` at `time` if enabled.
    #[inline]
    pub fn record(&mut self, time: SimTime, event: TraceEvent) {
        if self.enabled {
            self.records.push(TraceRecord { time, event });
        }
    }

    /// All recorded entries, in emission order (non-decreasing time).
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates entries matching a predicate.
    pub fn filter<'a>(
        &'a self,
        mut pred: impl FnMut(&TraceEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| pred(&r.event))
    }

    /// Renders a compact human-readable listing (for examples/debugging).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for r in &self.records {
            let _ = match r.event {
                TraceEvent::TaskStart {
                    core,
                    task,
                    critical,
                } => writeln!(
                    out,
                    "{:>14}  {core}: start task {task}{}",
                    r.time.to_string(),
                    if critical { " [critical]" } else { "" }
                ),
                TraceEvent::TaskEnd { core, task } => {
                    writeln!(out, "{:>14}  {core}: end task {task}", r.time.to_string())
                }
                TraceEvent::ReconfigRequest { core, target } => writeln!(
                    out,
                    "{:>14}  {core}: reconfig -> {target}",
                    r.time.to_string()
                ),
                TraceEvent::ReconfigApplied { core, level } => writeln!(
                    out,
                    "{:>14}  {core}: settled at {level}",
                    r.time.to_string()
                ),
                TraceEvent::Halt { core } => {
                    writeln!(out, "{:>14}  {core}: halt (C1)", r.time.to_string())
                }
                TraceEvent::Wake { core } => {
                    writeln!(out, "{:>14}  {core}: wake (C0)", r.time.to_string())
                }
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceEvent::Halt { core: CoreId(0) });
        assert!(t.records().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_preserves_order() {
        let mut t = Trace::enabled();
        t.record(
            SimTime::from_us(1),
            TraceEvent::TaskStart {
                core: CoreId(0),
                task: 7,
                critical: true,
            },
        );
        t.record(
            SimTime::from_us(2),
            TraceEvent::TaskEnd {
                core: CoreId(0),
                task: 7,
            },
        );
        assert_eq!(t.records().len(), 2);
        assert!(t.records()[0].time < t.records()[1].time);
    }

    #[test]
    fn filter_selects_events() {
        let mut t = Trace::enabled();
        t.record(SimTime::ZERO, TraceEvent::Halt { core: CoreId(1) });
        t.record(SimTime::from_us(1), TraceEvent::Wake { core: CoreId(1) });
        t.record(SimTime::from_us(2), TraceEvent::Halt { core: CoreId(2) });
        let halts: Vec<_> = t.filter(|e| matches!(e, TraceEvent::Halt { .. })).collect();
        assert_eq!(halts.len(), 2);
    }

    #[test]
    fn render_contains_core_names() {
        let mut t = Trace::enabled();
        t.record(
            SimTime::from_us(3),
            TraceEvent::ReconfigApplied {
                core: CoreId(5),
                level: PowerLevel::paper_fast(),
            },
        );
        let s = t.render();
        assert!(s.contains("core5"));
        assert!(s.contains("2GHz"));
    }
}
