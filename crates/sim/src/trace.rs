//! Structured simulation traces.
//!
//! Traces are the simulator's equivalent of the paper's Paraver timelines:
//! an ordered record of scheduling and reconfiguration events used by tests
//! (to assert causality and budget invariants at every instant) and by the
//! examples (to visualize schedules). Collection is governed by
//! [`TraceMode`]:
//!
//! - [`Off`](TraceMode::Off) (the default, and what `Suite` runs use):
//!   every record is dropped; the hot path costs one branch and never
//!   allocates.
//! - [`Counters`](TraceMode::Counters): events are tallied per kind
//!   ([`TraceCounts`]) without storing records — constant memory, enough
//!   for sanity dashboards over million-run sweeps.
//! - [`Full`](TraceMode::Full): records are kept in a bounded ring buffer
//!   (default [`Trace::DEFAULT_RING_CAPACITY`]); once full, the oldest
//!   half is discarded and counted in [`Trace::dropped`], so a runaway
//!   workload bounds memory instead of exhausting it.

use crate::machine::{CoreId, PowerLevel};
use crate::time::SimTime;
use serde::{DeError, Deserialize, Serialize, Value};

/// One traced simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A task started executing on a core. The `bool` is its criticality.
    TaskStart {
        /// Executing core.
        core: CoreId,
        /// Task identifier (runtime-assigned).
        task: u32,
        /// Whether the runtime considers the task critical.
        critical: bool,
    },
    /// A task finished.
    TaskEnd {
        /// Executing core.
        core: CoreId,
        /// Task identifier.
        task: u32,
    },
    /// A DVFS transition was requested for a core.
    ReconfigRequest {
        /// Target core.
        core: CoreId,
        /// Requested level.
        target: PowerLevel,
    },
    /// A DVFS transition settled and the new level took effect.
    ReconfigApplied {
        /// Target core.
        core: CoreId,
        /// Applied level.
        level: PowerLevel,
    },
    /// A core entered the halted (C1) state.
    Halt {
        /// Halting core.
        core: CoreId,
    },
    /// A core left the halted state.
    Wake {
        /// Waking core.
        core: CoreId,
    },
}

/// A time-stamped trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// When the event occurred.
    pub time: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// How much of the event stream a run collects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Drop everything (the default; zero steady-state cost).
    #[default]
    Off,
    /// Tally events per kind without storing records.
    Counters,
    /// Keep records in a bounded ring buffer.
    Full,
}

impl TraceMode {
    /// True when no per-event work happens at all.
    pub fn is_off(self) -> bool {
        self == TraceMode::Off
    }

    /// Lowercase label for reports/serialization.
    pub fn name(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Counters => "counters",
            TraceMode::Full => "full",
        }
    }
}

impl Serialize for TraceMode {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for TraceMode {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // Back-compat: specs used to carry `trace: bool`, and an
            // omitted field (Null) means the default.
            Value::Null | Value::Bool(false) => Ok(TraceMode::Off),
            Value::Bool(true) => Ok(TraceMode::Full),
            Value::Str(s) => match s.as_str() {
                "off" | "Off" => Ok(TraceMode::Off),
                "counters" | "Counters" => Ok(TraceMode::Counters),
                "full" | "Full" => Ok(TraceMode::Full),
                other => Err(DeError::new(format!("unknown trace mode `{other}`"))),
            },
            other => Err(DeError::new(format!(
                "trace mode: expected a string or bool, found {}",
                other.kind()
            ))),
        }
    }
}

/// Per-kind event tallies, maintained in `Counters` and `Full` modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCounts {
    /// Task body starts.
    pub task_starts: u64,
    /// Task completions.
    pub task_ends: u64,
    /// DVFS transitions requested.
    pub reconfig_requests: u64,
    /// DVFS transitions settled.
    pub reconfigs_applied: u64,
    /// C1 entries.
    pub halts: u64,
    /// C1 exits.
    pub wakes: u64,
}

impl TraceCounts {
    fn bump(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::TaskStart { .. } => self.task_starts += 1,
            TraceEvent::TaskEnd { .. } => self.task_ends += 1,
            TraceEvent::ReconfigRequest { .. } => self.reconfig_requests += 1,
            TraceEvent::ReconfigApplied { .. } => self.reconfigs_applied += 1,
            TraceEvent::Halt { .. } => self.halts += 1,
            TraceEvent::Wake { .. } => self.wakes += 1,
        }
    }

    /// Sum over all kinds.
    pub fn total(&self) -> u64 {
        self.task_starts
            + self.task_ends
            + self.reconfig_requests
            + self.reconfigs_applied
            + self.halts
            + self.wakes
    }
}

/// An event trace. Construct with [`Trace::with_mode`] (or the
/// [`enabled`](Trace::enabled)/[`disabled`](Trace::disabled) shorthands);
/// an `Off` trace drops all records.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    counts: TraceCounts,
    mode: TraceMode,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Ring-buffer bound of `Full` traces: enough for every test and
    /// example while capping memory at tens of MB for runaway workloads.
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

    /// A trace collecting in the given mode.
    pub fn with_mode(mode: TraceMode) -> Self {
        Trace {
            records: Vec::new(),
            counts: TraceCounts::default(),
            mode,
            capacity: Trace::DEFAULT_RING_CAPACITY,
            dropped: 0,
        }
    }

    /// A `Full` trace with a custom ring-buffer capacity (≥ 2).
    pub fn with_ring_capacity(capacity: usize) -> Self {
        let mut t = Trace::with_mode(TraceMode::Full);
        t.capacity = capacity.max(2);
        t
    }

    /// A trace that records events (`Full` mode).
    pub fn enabled() -> Self {
        Trace::with_mode(TraceMode::Full)
    }

    /// A trace that drops events (zero cost).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Whether any per-event collection is active.
    pub fn is_enabled(&self) -> bool {
        !self.mode.is_off()
    }

    /// The collection mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Records `event` at `time` according to the mode.
    #[inline]
    pub fn record(&mut self, time: SimTime, event: TraceEvent) {
        match self.mode {
            TraceMode::Off => {}
            TraceMode::Counters => self.counts.bump(&event),
            TraceMode::Full => {
                self.counts.bump(&event);
                if self.records.len() >= self.capacity {
                    // Ring behaviour: discard the oldest half in one move
                    // (amortized O(1) per record) and keep counting.
                    let drop = self.capacity / 2;
                    self.records.drain(..drop);
                    self.dropped += drop as u64;
                }
                self.records.push(TraceRecord { time, event });
            }
        }
    }

    /// Per-kind tallies (`Counters` and `Full` modes; zeros when off).
    pub fn counts(&self) -> &TraceCounts {
        &self.counts
    }

    /// Records discarded by the ring bound (0 unless a `Full` trace
    /// overflowed its capacity).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All retained entries, in emission order (non-decreasing time). When
    /// the ring bound was hit this is the most recent window; check
    /// [`dropped`](Self::dropped).
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates entries matching a predicate.
    pub fn filter<'a>(
        &'a self,
        mut pred: impl FnMut(&TraceEvent) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| pred(&r.event))
    }

    /// Renders a compact human-readable listing (for examples/debugging).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for r in &self.records {
            let _ = match r.event {
                TraceEvent::TaskStart {
                    core,
                    task,
                    critical,
                } => writeln!(
                    out,
                    "{:>14}  {core}: start task {task}{}",
                    r.time.to_string(),
                    if critical { " [critical]" } else { "" }
                ),
                TraceEvent::TaskEnd { core, task } => {
                    writeln!(out, "{:>14}  {core}: end task {task}", r.time.to_string())
                }
                TraceEvent::ReconfigRequest { core, target } => writeln!(
                    out,
                    "{:>14}  {core}: reconfig -> {target}",
                    r.time.to_string()
                ),
                TraceEvent::ReconfigApplied { core, level } => writeln!(
                    out,
                    "{:>14}  {core}: settled at {level}",
                    r.time.to_string()
                ),
                TraceEvent::Halt { core } => {
                    writeln!(out, "{:>14}  {core}: halt (C1)", r.time.to_string())
                }
                TraceEvent::Wake { core } => {
                    writeln!(out, "{:>14}  {core}: wake (C0)", r.time.to_string())
                }
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceEvent::Halt { core: CoreId(0) });
        assert!(t.records().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_preserves_order() {
        let mut t = Trace::enabled();
        t.record(
            SimTime::from_us(1),
            TraceEvent::TaskStart {
                core: CoreId(0),
                task: 7,
                critical: true,
            },
        );
        t.record(
            SimTime::from_us(2),
            TraceEvent::TaskEnd {
                core: CoreId(0),
                task: 7,
            },
        );
        assert_eq!(t.records().len(), 2);
        assert!(t.records()[0].time < t.records()[1].time);
    }

    #[test]
    fn filter_selects_events() {
        let mut t = Trace::enabled();
        t.record(SimTime::ZERO, TraceEvent::Halt { core: CoreId(1) });
        t.record(SimTime::from_us(1), TraceEvent::Wake { core: CoreId(1) });
        t.record(SimTime::from_us(2), TraceEvent::Halt { core: CoreId(2) });
        let halts: Vec<_> = t.filter(|e| matches!(e, TraceEvent::Halt { .. })).collect();
        assert_eq!(halts.len(), 2);
    }

    #[test]
    fn counters_mode_tallies_without_storing() {
        let mut t = Trace::with_mode(TraceMode::Counters);
        t.record(SimTime::ZERO, TraceEvent::Halt { core: CoreId(0) });
        t.record(SimTime::from_us(1), TraceEvent::Wake { core: CoreId(0) });
        t.record(
            SimTime::from_us(2),
            TraceEvent::TaskStart {
                core: CoreId(0),
                task: 1,
                critical: false,
            },
        );
        assert!(t.records().is_empty(), "counters mode must not store");
        assert_eq!(t.counts().halts, 1);
        assert_eq!(t.counts().wakes, 1);
        assert_eq!(t.counts().task_starts, 1);
        assert_eq!(t.counts().total(), 3);
        assert!(t.is_enabled());
    }

    #[test]
    fn full_ring_discards_oldest_half() {
        let mut t = Trace::with_ring_capacity(4);
        for i in 0..6u32 {
            t.record(
                SimTime::from_ns(i as u64),
                TraceEvent::Halt { core: CoreId(i) },
            );
        }
        // Capacity 4: the 5th record triggers a half-drain (2 dropped).
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.counts().halts, 6, "counts see every event");
        let cores: Vec<u32> = t
            .records()
            .iter()
            .map(|r| match r.event {
                TraceEvent::Halt { core } => core.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(cores, vec![2, 3, 4, 5], "most recent window retained");
    }

    #[test]
    fn trace_mode_serde_accepts_legacy_bools() {
        use serde::{Deserialize as _, Serialize as _, Value};
        assert_eq!(
            TraceMode::Counters.to_value(),
            Value::Str("counters".into())
        );
        for (v, want) in [
            (Value::Null, TraceMode::Off),
            (Value::Bool(false), TraceMode::Off),
            (Value::Bool(true), TraceMode::Full),
            (Value::Str("full".into()), TraceMode::Full),
            (Value::Str("counters".into()), TraceMode::Counters),
            (Value::Str("off".into()), TraceMode::Off),
        ] {
            assert_eq!(TraceMode::from_value(&v).unwrap(), want);
        }
        assert!(TraceMode::from_value(&Value::Str("paraver".into())).is_err());
    }

    #[test]
    fn render_contains_core_names() {
        let mut t = Trace::enabled();
        t.record(
            SimTime::from_us(3),
            TraceEvent::ReconfigApplied {
                core: CoreId(5),
                level: PowerLevel::paper_fast(),
            },
        );
        let s = t.render();
        assert!(s.contains("core5"));
        assert!(s.contains("2GHz"));
    }
}
