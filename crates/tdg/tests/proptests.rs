//! Property tests for the task-graph substrate.

use cata_sim::progress::ExecProfile;
use cata_sim::time::Frequency;
use cata_tdg::criticality::{BottomLevelEstimator, CriticalityEstimator};
use cata_tdg::deps::{AccessMode, DepTracker, RegionId};
use cata_tdg::{TaskGraph, TaskId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(n: usize, p: f64, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TaskGraph::new();
    let types = [g.add_type("a", 0), g.add_type("b", 1), g.add_type("c", 2)];
    for i in 0..n {
        let mut deps = Vec::new();
        for j in 0..i {
            if rng.gen_bool(p) {
                deps.push(TaskId(j as u32));
            }
        }
        let ty = types[rng.gen_range(0..3)];
        let cycles = rng.gen_range(1..1_000_000u64);
        g.add_task(ty, ExecProfile::new(cycles, 0), &deps);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants hold for arbitrary construction sequences.
    #[test]
    fn graphs_validate(n in 0usize..60, p in 0.0f64..0.5, seed in any::<u64>()) {
        let g = random_graph(n, p, seed);
        prop_assert!(g.validate().is_ok(), "{:?}", g.validate());
        // Edge symmetry implies the edge count matches from both sides.
        let via_succs: usize = g.task_ids().map(|t| g.succs(t).len()).sum();
        prop_assert_eq!(g.num_edges(), via_succs);
    }

    /// The critical path is between the longest single task and the total
    /// work, and never lengthens at a higher frequency.
    #[test]
    fn critical_path_bounds(n in 1usize..60, p in 0.0f64..0.5, seed in any::<u64>()) {
        let g = random_graph(n, p, seed);
        let f1 = Frequency::from_ghz(1);
        let f2 = Frequency::from_ghz(2);
        let cp1 = g.critical_path_at(f1);
        let cp2 = g.critical_path_at(f2);
        prop_assert!(cp2 <= cp1);
        prop_assert!(cp1 <= g.total_work_at(f1));
        let longest_task = g
            .tasks()
            .map(|t| t.profile.duration_at(f1))
            .max()
            .unwrap();
        prop_assert!(cp1 >= longest_task);
    }

    /// Graph depth (hops) is consistent with the unweighted critical path:
    /// a graph of depth d has a dependency chain of exactly d tasks.
    #[test]
    fn stats_depth_matches_chain(n in 1usize..50, p in 0.0f64..0.5, seed in any::<u64>()) {
        let g = random_graph(n, p, seed);
        let depth = g.stats().depth as usize;
        // Recompute by longest-path DP over preds.
        let mut d = vec![1u32; g.num_tasks()];
        let mut best = 0;
        for t in g.task_ids() {
            for &pd in g.preds(t) {
                d[t.index()] = d[t.index()].max(d[pd.index()] + 1);
            }
            best = best.max(d[t.index()]);
        }
        prop_assert_eq!(depth, best as usize);
    }

    /// Region-derived graphs are valid and reads between two writes never
    /// depend on each other.
    #[test]
    fn dep_tracker_builds_valid_graphs(
        accesses in prop::collection::vec((0u64..3, 0u8..3), 0..80),
    ) {
        let mut tracker = DepTracker::new();
        let mut g = TaskGraph::new();
        let ty = g.add_type("t", 0);
        let mut readers_since_write: std::collections::HashMap<u64, Vec<TaskId>> =
            Default::default();
        for (i, (region, mode)) in accesses.iter().enumerate() {
            let mode = match mode {
                0 => AccessMode::In,
                1 => AccessMode::Out,
                _ => AccessMode::InOut,
            };
            let id = TaskId(i as u32);
            let deps = tracker.deps_for(id, &[(RegionId(*region), mode)]);
            // Concurrent readers of one region must not be ordered.
            if mode == AccessMode::In {
                for r in readers_since_write.entry(*region).or_default().iter() {
                    prop_assert!(!deps.contains(r), "readers {r} and {id} ordered");
                }
                readers_since_write.get_mut(region).unwrap().push(id);
            } else {
                readers_since_write.insert(*region, Vec::new());
            }
            g.add_task(ty, ExecProfile::new(1, 0), &deps);
        }
        prop_assert!(g.validate().is_ok());
    }

    /// The BL estimator classifies at least one pending task as critical
    /// whenever anything is pending (the longest path always exists), and
    /// classification levels collapse consistently to the binary decision.
    #[test]
    fn bl_always_has_a_critical_task(n in 1usize..40, p in 0.0f64..0.5, seed in any::<u64>()) {
        let g = random_graph(n, p, seed);
        let mut bl = BottomLevelEstimator::new();
        for t in g.task_ids() {
            bl.on_submit(&g, t);
        }
        let any_critical = g.task_ids().any(|t| bl.classify(&g, t));
        prop_assert!(any_critical, "no critical task among {} pending", n);
        for t in g.task_ids() {
            let c = bl.classify(&g, t);
            let l = bl.classify_level(&g, t);
            prop_assert_eq!(c, l > 0);
        }
    }
}
