//! Criticality estimators: static annotations vs. dynamic bottom-level.
//!
//! The paper compares two ways of deciding which tasks are critical (§II-B):
//!
//! - **Static annotations** ([`StaticAnnotations`], the `+SA` configurations):
//!   the programmer annotates each task *type* with `criticality(c)`; a task
//!   is critical iff its type has `c > 0`. Zero runtime overhead.
//! - **Bottom-level** ([`BottomLevelEstimator`], the `+BL` configurations):
//!   the runtime maintains bottom levels over the partial TDG and marks a
//!   task critical when its BL is (close to) the maximum BL among tasks that
//!   are still pending. This adapts dynamically but (i) costs an ancestor
//!   walk per submission, (ii) ignores task durations, and (iii) sees only
//!   the submitted sub-graph — the three limitations §II-B lists.

use crate::bottom_level::BottomLevels;
use crate::graph::TaskGraph;
use crate::task::TaskId;
use std::collections::BTreeMap;

/// A pluggable criticality estimation policy.
///
/// Lifecycle: the runtime calls [`on_submit`](Self::on_submit) once per task
/// at creation (in submission order), [`classify`](Self::classify) when the
/// task is enqueued in a ready queue, and [`on_complete`](Self::on_complete)
/// when it finishes.
pub trait CriticalityEstimator: Send {
    /// A short name for reports ("SA", "BL").
    fn name(&self) -> &'static str;

    /// Integrates a newly submitted task. Returns the number of TDG node
    /// visits performed; the simulation charges these as runtime overhead on
    /// the submitting thread.
    fn on_submit(&mut self, _graph: &TaskGraph, _task: TaskId) -> u64 {
        0
    }

    /// Decides whether `task` is critical, at ready-queue insertion time.
    fn classify(&mut self, graph: &TaskGraph, task: TaskId) -> bool;

    /// The task's criticality *level* (the `c` of `criticality(c)`): 0 for
    /// non-critical, higher values rank more-critical work. The default
    /// collapses to the binary [`classify`](Self::classify); estimators with
    /// richer information (static annotations) override it.
    fn classify_level(&mut self, graph: &TaskGraph, task: TaskId) -> u8 {
        u8::from(self.classify(graph, task))
    }

    /// Retires a completed task (pending-set maintenance).
    fn on_complete(&mut self, _graph: &TaskGraph, _task: TaskId) {}

    /// True when [`classify_level`](Self::classify_level) equals the task
    /// type's static `criticality(c)` annotation for every task,
    /// independent of submission/completion history. Engines use this to
    /// serve levels from a precomputed per-task array
    /// ([`GraphView::crit_level`](crate::view::GraphView::crit_level))
    /// instead of making a virtual call per ready task. Dynamic
    /// estimators (bottom-level) and estimators that *ignore* the
    /// annotation (the FIFO baseline's always-zero classifier) must
    /// return `false` — the default.
    fn is_annotation_static(&self) -> bool {
        false
    }
}

/// Criticality from the `criticality(c)` clause on the task type.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticAnnotations;

impl CriticalityEstimator for StaticAnnotations {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn classify(&mut self, graph: &TaskGraph, task: TaskId) -> bool {
        graph.type_of(task).criticality > 0
    }

    fn classify_level(&mut self, graph: &TaskGraph, task: TaskId) -> u8 {
        graph.type_of(task).criticality
    }

    fn is_annotation_static(&self) -> bool {
        true
    }
}

/// Criticality from dynamically maintained bottom levels over the partial
/// TDG (the CATS \[24\] estimator).
///
/// A task is classified critical when `BL(task) ≥ alpha · max_pending_BL`,
/// where `max_pending_BL` is the largest BL among submitted-but-incomplete
/// tasks. `alpha = 1.0` reproduces CATS's "longest path only" rule; smaller
/// values widen the critical set (ablation A3 sweeps this).
#[derive(Debug, Clone)]
pub struct BottomLevelEstimator {
    levels: BottomLevels,
    /// Multiset of *live* BLs of pending tasks: BL → count. Kept coherent
    /// with `levels` through the change callback of
    /// [`BottomLevels::on_submit_with`].
    pending: BTreeMap<u32, u32>,
    /// `pending_flag[t]` is true between `on_submit(t)` and `on_complete(t)`.
    pending_flag: Vec<bool>,
    alpha: f64,
}

impl BottomLevelEstimator {
    /// Creates the estimator with the CATS rule (`alpha = 1.0`).
    pub fn new() -> Self {
        Self::with_alpha(1.0)
    }

    /// Creates the estimator with a custom criticality threshold fraction.
    ///
    /// # Panics
    /// Panics unless `0.0 < alpha <= 1.0`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        BottomLevelEstimator {
            levels: BottomLevels::new(),
            pending: BTreeMap::new(),
            pending_flag: Vec::new(),
            alpha,
        }
    }

    /// The underlying bottom levels (for reports/tests).
    pub fn levels(&self) -> &BottomLevels {
        &self.levels
    }

    /// The largest BL among pending tasks, or `None` when drained.
    pub fn max_pending_bl(&self) -> Option<u32> {
        self.pending.keys().next_back().copied()
    }

    fn remove_pending(&mut self, bl: u32) {
        if let Some(c) = self.pending.get_mut(&bl) {
            *c -= 1;
            if *c == 0 {
                self.pending.remove(&bl);
            }
        }
    }
}

impl Default for BottomLevelEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl CriticalityEstimator for BottomLevelEstimator {
    fn name(&self) -> &'static str {
        "BL"
    }

    fn on_submit(&mut self, graph: &TaskGraph, task: TaskId) -> u64 {
        debug_assert_eq!(self.pending_flag.len(), task.index());
        self.pending_flag.push(true);
        // A submission may raise ancestor BLs; mirror every change into the
        // pending multiset so the max is always live. Completed ancestors
        // are skipped — their BL is irrelevant to scheduling.
        let pending = &mut self.pending;
        let flags = &self.pending_flag;
        let visits = self.levels.on_submit_with(graph, task, |t, old, new| {
            if !flags[t.index()] {
                return;
            }
            if old != new {
                if let Some(c) = pending.get_mut(&old) {
                    *c -= 1;
                    if *c == 0 {
                        pending.remove(&old);
                    }
                }
            }
            *pending.entry(new).or_insert(0) += 1;
        });
        visits
    }

    fn classify(&mut self, graph: &TaskGraph, task: TaskId) -> bool {
        debug_assert!(task.index() < graph.num_tasks());
        let bl = self.levels.bl(task);
        let max_pending = self.max_pending_bl().unwrap_or(0);
        let threshold = (self.alpha * max_pending as f64).ceil() as u32;
        bl >= threshold
    }

    fn on_complete(&mut self, _graph: &TaskGraph, task: TaskId) {
        if std::mem::replace(&mut self.pending_flag[task.index()], false) {
            let bl = self.levels.bl(task);
            self.remove_pending(bl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::progress::ExecProfile;

    fn p() -> ExecProfile {
        ExecProfile::new(1, 0)
    }

    #[test]
    fn static_annotations_follow_type() {
        let mut g = TaskGraph::new();
        let hot = g.add_type("hot", 1);
        let cold = g.add_type("cold", 0);
        let a = g.add_task(hot, p(), &[]);
        let b = g.add_task(cold, p(), &[]);
        let mut sa = StaticAnnotations;
        assert!(sa.classify(&g, a));
        assert!(!sa.classify(&g, b));
        assert_eq!(sa.on_submit(&g, a), 0, "SA must be overhead-free");
        assert_eq!(sa.name(), "SA");
    }

    #[test]
    fn bl_marks_longest_path_critical() {
        // Chain 0<-1<-2 plus isolated 3: chain head has max BL.
        let mut g = TaskGraph::new();
        let ty = g.add_type("t", 0);
        let mut bl = BottomLevelEstimator::new();
        let t0 = g.add_task(ty, p(), &[]);
        bl.on_submit(&g, t0);
        let t1 = g.add_task(ty, p(), &[t0]);
        bl.on_submit(&g, t1);
        let t2 = g.add_task(ty, p(), &[t1]);
        bl.on_submit(&g, t2);
        let t3 = g.add_task(ty, p(), &[]);
        bl.on_submit(&g, t3);

        assert!(bl.classify(&g, t0), "chain head is on the longest path");
        assert!(!bl.classify(&g, t3), "isolated leaf is not critical");
        assert_eq!(bl.max_pending_bl(), Some(2));
    }

    #[test]
    fn completion_lowers_the_pending_max() {
        let mut g = TaskGraph::new();
        let ty = g.add_type("t", 0);
        let mut bl = BottomLevelEstimator::new();
        let t0 = g.add_task(ty, p(), &[]);
        bl.on_submit(&g, t0);
        let t1 = g.add_task(ty, p(), &[t0]);
        bl.on_submit(&g, t1);
        let t2 = g.add_task(ty, p(), &[]);
        bl.on_submit(&g, t2);

        // BLs: t0=1, t1=0, t2=0; max pending = 1, so only t0 is critical.
        assert!(bl.classify(&g, t0));
        assert!(!bl.classify(&g, t2));
        bl.on_complete(&g, t0);
        // Now everything pending has BL 0 — all tasks tie on the "longest"
        // path and classify as critical.
        assert_eq!(bl.max_pending_bl(), Some(0));
        assert!(bl.classify(&g, t2));
    }

    #[test]
    fn alpha_widens_the_critical_set() {
        // Chain of 4 + isolated task: with alpha=0.5 the mid-chain tasks
        // also classify as critical.
        let mut g = TaskGraph::new();
        let ty = g.add_type("t", 0);
        let mut strict = BottomLevelEstimator::new();
        let mut loose = BottomLevelEstimator::with_alpha(0.5);
        let mut prev: Option<TaskId> = None;
        let mut ids = Vec::new();
        for _ in 0..4 {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            let id = g.add_task(ty, p(), &deps);
            strict.on_submit(&g, id);
            loose.on_submit(&g, id);
            prev = Some(id);
            ids.push(id);
        }
        // BLs: 3,2,1,0. Strict: only BL 3. Loose (ceil(0.5*3)=2): BL >= 2.
        assert!(strict.classify(&g, ids[0]));
        assert!(!strict.classify(&g, ids[1]));
        assert!(loose.classify(&g, ids[1]));
        assert!(!loose.classify(&g, ids[2]));
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn zero_alpha_rejected() {
        let _ = BottomLevelEstimator::with_alpha(0.0);
    }

    #[test]
    fn bl_reports_submission_overhead() {
        let mut g = TaskGraph::new();
        let ty = g.add_type("t", 0);
        let mut bl = BottomLevelEstimator::new();
        let t0 = g.add_task(ty, p(), &[]);
        let v0 = bl.on_submit(&g, t0);
        let t1 = g.add_task(ty, p(), &[t0]);
        let v1 = bl.on_submit(&g, t1);
        assert!(v0 >= 1);
        assert!(v1 > v0, "a dependent submission must walk ancestors");
        assert_eq!(bl.levels().total_visits(), v0 + v1);
    }
}
