//! The task dependence graph.

use crate::task::{Task, TaskId, TaskType, TypeId};
use cata_sim::progress::ExecProfile;
use cata_sim::time::{Frequency, SimDuration};
use serde::{Deserialize, Serialize};

/// A task dependence graph built incrementally in submission order.
///
/// Dependences may only reference already-submitted tasks, which guarantees
/// acyclicity by construction and makes `0..n` a valid topological order —
/// the same invariant a real task runtime enjoys (a task cannot depend on a
/// task that has not been created yet).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    types: Vec<TaskType>,
    tasks: Vec<Task>,
}

/// Shape statistics of a TDG, used by workload validation and reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of task instances.
    pub tasks: usize,
    /// Number of dependence edges.
    pub edges: usize,
    /// Longest dependency chain, in tasks.
    pub depth: u32,
    /// Largest number of direct predecessors of any task (Fluidanimate
    /// reaches 9 in the paper — the source of the CATS+BL overhead).
    pub max_preds: usize,
    /// Mean number of direct predecessors.
    pub avg_preds: f64,
    /// Number of source tasks (no predecessors).
    pub sources: usize,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph with task capacity pre-allocated.
    pub fn with_capacity(tasks: usize) -> Self {
        TaskGraph {
            types: Vec::new(),
            tasks: Vec::with_capacity(tasks),
        }
    }

    /// Registers a task type with a static criticality annotation
    /// (`#pragma omp task criticality(c)`).
    pub fn add_type(&mut self, name: impl Into<String>, criticality: u8) -> TypeId {
        let id = TypeId(self.types.len() as u32);
        self.types.push(TaskType {
            name: name.into(),
            criticality,
        });
        id
    }

    /// Submits a task instance of type `ty` depending on `deps`.
    ///
    /// # Panics
    /// Panics if `ty` is unregistered or any dependence is not an
    /// already-submitted task — both are runtime-usage bugs, matching the
    /// aborts a real runtime would raise.
    pub fn add_task(&mut self, ty: TypeId, profile: ExecProfile, deps: &[TaskId]) -> TaskId {
        assert!(
            ty.index() < self.types.len(),
            "unregistered task type {ty:?}"
        );
        let id = TaskId(self.tasks.len() as u32);
        let mut preds = Vec::with_capacity(deps.len());
        for &d in deps {
            assert!(
                d.index() < self.tasks.len(),
                "dependence {d} of {id} not yet submitted"
            );
            if !preds.contains(&d) {
                preds.push(d);
                self.tasks[d.index()].succs.push(id);
            }
        }
        self.tasks.push(Task {
            id,
            ty,
            profile,
            preds,
            succs: Vec::new(),
        });
        id
    }

    /// Number of task instances.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of task types.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// True if no tasks have been submitted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// One task instance.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// One task type.
    pub fn task_type(&self, id: TypeId) -> &TaskType {
        &self.types[id.index()]
    }

    /// The type record of a task instance.
    pub fn type_of(&self, id: TaskId) -> &TaskType {
        self.task_type(self.tasks[id.index()].ty)
    }

    /// Iterates all tasks in submission (= topological) order.
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// Iterates all task ids in submission (= topological) order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Direct predecessors of `id`.
    pub fn preds(&self, id: TaskId) -> &[TaskId] {
        &self.tasks[id.index()].preds
    }

    /// Direct successors of `id`.
    pub fn succs(&self, id: TaskId) -> &[TaskId] {
        &self.tasks[id.index()].succs
    }

    /// Total number of dependence edges.
    pub fn num_edges(&self) -> usize {
        self.tasks.iter().map(|t| t.preds.len()).sum()
    }

    /// Shape statistics.
    pub fn stats(&self) -> GraphStats {
        let tasks = self.tasks.len();
        let edges = self.num_edges();
        let max_preds = self.tasks.iter().map(|t| t.preds.len()).max().unwrap_or(0);
        let sources = self.tasks.iter().filter(|t| t.preds.is_empty()).count();
        // Depth via the topological construction order.
        let mut depth_of = vec![0u32; tasks];
        let mut depth = 0;
        for t in &self.tasks {
            let d = t
                .preds
                .iter()
                .map(|p| depth_of[p.index()] + 1)
                .max()
                .unwrap_or(1)
                .max(1);
            depth_of[t.id.index()] = d;
            depth = depth.max(d);
        }
        GraphStats {
            tasks,
            edges,
            depth,
            max_preds,
            avg_preds: if tasks == 0 {
                0.0
            } else {
                edges as f64 / tasks as f64
            },
            sources,
        }
    }

    /// Sum of all task durations at `freq` — the serial execution time, and
    /// the numerator of the ideal-speedup bound.
    pub fn total_work_at(&self, freq: Frequency) -> SimDuration {
        self.tasks
            .iter()
            .map(|t| t.profile.duration_at(freq) + t.profile.total_block_time())
            .sum()
    }

    /// Length of the weighted critical path at `freq`: the minimum possible
    /// execution time with unlimited cores at that frequency.
    pub fn critical_path_at(&self, freq: Frequency) -> SimDuration {
        let mut finish = vec![SimDuration::ZERO; self.tasks.len()];
        let mut best = SimDuration::ZERO;
        for t in &self.tasks {
            let ready: SimDuration = t
                .preds
                .iter()
                .map(|p| finish[p.index()])
                .max()
                .unwrap_or(SimDuration::ZERO);
            let dur = t.profile.duration_at(freq) + t.profile.total_block_time();
            finish[t.id.index()] = ready + dur;
            best = best.max(finish[t.id.index()]);
        }
        best
    }

    /// Checks structural invariants (id density, edge symmetry, topological
    /// dependences). Cheap enough for tests; not called on hot paths.
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.tasks.iter().enumerate() {
            if t.id.index() != i {
                return Err(format!("task {i} has id {}", t.id));
            }
            for &p in &t.preds {
                if p.index() >= i {
                    return Err(format!("{} depends on non-earlier {p}", t.id));
                }
                if !self.tasks[p.index()].succs.contains(&t.id) {
                    return Err(format!("missing reverse edge {p} -> {}", t.id));
                }
            }
            for &s in &t.succs {
                if s.index() <= i {
                    return Err(format!("{} has non-later successor {s}", t.id));
                }
                if !self.tasks[s.index()].preds.contains(&t.id) {
                    return Err(format!("missing forward edge {} -> {s}", t.id));
                }
            }
            if t.ty.index() >= self.types.len() {
                return Err(format!("{} has unregistered type", t.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(cycles: u64) -> ExecProfile {
        ExecProfile::new(cycles, 0)
    }

    fn diamond() -> TaskGraph {
        // a -> {b, c} -> d
        let mut g = TaskGraph::new();
        let ty = g.add_type("t", 0);
        let a = g.add_task(ty, profile(100), &[]);
        let b = g.add_task(ty, profile(200), &[a]);
        let c = g.add_task(ty, profile(300), &[a]);
        let _d = g.add_task(ty, profile(100), &[b, c]);
        g
    }

    #[test]
    fn construction_and_edges() {
        let g = diamond();
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.preds(TaskId(3)), &[TaskId(1), TaskId(2)]);
        assert_eq!(g.succs(TaskId(0)), &[TaskId(1), TaskId(2)]);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_deps_are_coalesced() {
        let mut g = TaskGraph::new();
        let ty = g.add_type("t", 0);
        let a = g.add_task(ty, profile(1), &[]);
        let b = g.add_task(ty, profile(1), &[a, a, a]);
        assert_eq!(g.preds(b).len(), 1);
        assert_eq!(g.succs(a).len(), 1);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "not yet submitted")]
    fn forward_dependence_rejected() {
        let mut g = TaskGraph::new();
        let ty = g.add_type("t", 0);
        let _ = g.add_task(ty, profile(1), &[TaskId(5)]);
    }

    #[test]
    #[should_panic(expected = "unregistered task type")]
    fn unknown_type_rejected() {
        let mut g = TaskGraph::new();
        let _ = g.add_task(TypeId(0), profile(1), &[]);
    }

    #[test]
    fn stats_of_diamond() {
        let s = diamond().stats();
        assert_eq!(s.tasks, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.depth, 3);
        assert_eq!(s.max_preds, 2);
        assert_eq!(s.sources, 1);
        assert!((s.avg_preds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_takes_heavier_branch() {
        let g = diamond();
        let f = Frequency::from_ghz(1);
        // a(100) -> c(300) -> d(100) = 500 cycles = 500 ns at 1 GHz.
        assert_eq!(g.critical_path_at(f), SimDuration::from_ns(500));
        assert_eq!(g.total_work_at(f), SimDuration::from_ns(700));
    }

    #[test]
    fn critical_path_counts_block_time() {
        let mut g = TaskGraph::new();
        let ty = g.add_type("io", 0);
        let p = ExecProfile::new(1000, 0).with_block(0.5, SimDuration::from_ns(400));
        g.add_task(ty, p, &[]);
        let f = Frequency::from_ghz(1);
        assert_eq!(g.critical_path_at(f), SimDuration::from_ns(1400));
    }

    #[test]
    fn type_lookup() {
        let mut g = TaskGraph::new();
        let hi = g.add_type("critical-kernel", 2);
        let t = g.add_task(hi, profile(1), &[]);
        assert_eq!(g.type_of(t).criticality, 2);
        assert_eq!(g.type_of(t).name, "critical-kernel");
        assert_eq!(g.num_types(), 1);
    }

    #[test]
    fn empty_graph_stats() {
        let g = TaskGraph::new();
        let s = g.stats();
        assert_eq!(s.tasks, 0);
        assert_eq!(s.depth, 0);
        assert!(g.is_empty());
        g.validate().unwrap();
    }
}
