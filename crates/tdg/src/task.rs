//! Task instances and task types.

use cata_sim::progress::ExecProfile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task instance, dense from 0 in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a task *type* — one per source-level task annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A task type: the static annotation site.
///
/// The paper extends the OpenMP 4.0 `task` directive with
/// `criticality(c)`; `c > 0` marks the type critical, `c == 0` non-critical
/// (§II-B). The level is kept (not just a flag) so the multi-level extension
/// can rank types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskType {
    /// Human-readable name (e.g. the function the pragma wraps).
    pub name: String,
    /// Static criticality annotation; 0 = non-critical.
    pub criticality: u8,
}

/// One task instance in the TDG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// This task's id.
    pub id: TaskId,
    /// Its type (annotation site).
    pub ty: TypeId,
    /// Its execution cost model.
    pub profile: ExecProfile,
    pub(crate) preds: Vec<TaskId>,
    pub(crate) succs: Vec<TaskId>,
}

impl Task {
    /// Tasks this one depends on (must complete first).
    pub fn preds(&self) -> &[TaskId] {
        &self.preds
    }

    /// Tasks that depend on this one.
    pub fn succs(&self) -> &[TaskId] {
        &self.succs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(TaskId(42).to_string(), "t42");
        assert_eq!(TaskId(7).index(), 7);
        assert_eq!(TypeId(3).index(), 3);
    }
}
