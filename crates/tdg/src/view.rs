//! [`GraphView`]: a structure-of-arrays snapshot of the dispatch-hot
//! graph fields.
//!
//! [`TaskGraph`] stores tasks as an array of structs — each `Task` carries
//! its own `preds`/`succs` vectors, profile and type id — which is the
//! right shape for incremental construction and for the digest-pinned
//! `.tdg.json` serialization, but the wrong shape for the engines' inner
//! loop: every completion chases a per-task heap pointer to reach the
//! successor list, and every instance start walks `preds` vectors just to
//! count them.
//!
//! `GraphView` flattens exactly the fields the dispatch path touches into
//! parallel arrays sized once per run:
//!
//! - successor lists as one CSR pair (`succ_off`/`succ`), so a
//!   completion's successor walk is a contiguous slice;
//! - predecessor *counts* (the indegree seed), so per-run/per-instance
//!   indegree initialization is a `memcpy` instead of `n` vector-length
//!   reads;
//! - the static `criticality(c)` level of each task's type, so
//!   annotation-static estimators classify with an array read;
//! - the profile work scalars (`cpu_cycles`, `mem_ps`), the per-task
//!   weights a work-partitioner (ROADMAP: conservative parallel
//!   simulation) splits on.
//!
//! The graph itself is never mutated after submission closes, so the view
//! is a pure snapshot: [`rebuild`](GraphView::rebuild) reuses its buffers
//! across runs (the engines keep one in their per-thread scratch), and
//! [`from_graph`](GraphView::from_graph) builds a fresh one for callers
//! that hold it long-term (one per distinct service workload).

use crate::graph::TaskGraph;
use crate::task::TaskId;
use std::ops::Range;

/// Parallel-array snapshot of a [`TaskGraph`]'s dispatch-hot fields.
///
/// See the [module docs](self) for what belongs here and why. The view
/// borrows nothing: it can outlive engine borrows of the graph and be
/// rebuilt in place for the next run.
#[derive(Debug, Clone, Default)]
pub struct GraphView {
    /// CSR offsets into `succ`: task `t`'s successors are
    /// `succ[succ_off[t] .. succ_off[t + 1]]`. Length `n + 1`.
    succ_off: Vec<u32>,
    /// All successor lists, concatenated in task order (each list keeps
    /// the graph's edge order, so ready-queue insertion order — and with
    /// it every digest — is unchanged).
    succ: Vec<TaskId>,
    /// Number of predecessors per task — the indegree seed.
    pred_count: Vec<u32>,
    /// Static `criticality(c)` annotation of each task's type.
    crit_level: Vec<u8>,
    /// Frequency-scaled CPU work per task, in cycles.
    cpu_cycles: Vec<u64>,
    /// Frequency-invariant memory time per task, in picoseconds.
    mem_ps: Vec<u64>,
}

impl GraphView {
    /// An empty view (no tasks). Use [`rebuild`](Self::rebuild) to point
    /// it at a graph.
    pub fn new() -> Self {
        GraphView::default()
    }

    /// A fresh view of `graph`.
    pub fn from_graph(graph: &TaskGraph) -> Self {
        let mut view = GraphView::default();
        view.rebuild(graph);
        view
    }

    /// Re-snapshots `graph` into this view's buffers. Allocation-free
    /// once the buffers have grown to the largest graph a thread has
    /// seen — the engines call this once per run from reused scratch.
    pub fn rebuild(&mut self, graph: &TaskGraph) {
        let n = graph.num_tasks();
        self.succ_off.clear();
        self.succ.clear();
        self.pred_count.clear();
        self.crit_level.clear();
        self.cpu_cycles.clear();
        self.mem_ps.clear();
        self.succ_off.reserve(n + 1);
        self.succ.reserve(graph.num_edges());
        self.pred_count.reserve(n);
        self.crit_level.reserve(n);
        self.cpu_cycles.reserve(n);
        self.mem_ps.reserve(n);

        self.succ_off.push(0);
        for t in graph.task_ids() {
            self.succ.extend_from_slice(graph.succs(t));
            self.succ_off.push(self.succ.len() as u32);
            self.pred_count.push(graph.preds(t).len() as u32);
            self.crit_level.push(graph.type_of(t).criticality);
            let profile = &graph.task(t).profile;
            self.cpu_cycles.push(profile.cpu_cycles);
            self.mem_ps.push(profile.mem_ps);
        }
    }

    /// Number of tasks in the snapshot.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.pred_count.len()
    }

    /// Number of dependence edges in the snapshot.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }

    /// `task`'s successors, in the graph's edge order.
    #[inline]
    pub fn succs(&self, task: TaskId) -> &[TaskId] {
        let Range { start, end } = self.succ_span(task);
        &self.succ[start as usize..end as usize]
    }

    /// The CSR index range of `task`'s successors — a `Copy` value, so
    /// an engine that owns its view can walk successors while mutating
    /// sibling state between [`succ_at`](Self::succ_at) reads.
    #[inline]
    pub fn succ_span(&self, task: TaskId) -> Range<u32> {
        self.succ_off[task.index()]..self.succ_off[task.index() + 1]
    }

    /// The successor at CSR index `i` (from [`succ_span`](Self::succ_span)).
    #[inline]
    pub fn succ_at(&self, i: u32) -> TaskId {
        self.succ[i as usize]
    }

    /// Predecessor counts for all tasks, in task order — copy this slice
    /// to seed an indegree vector.
    #[inline]
    pub fn pred_counts(&self) -> &[u32] {
        &self.pred_count
    }

    /// `task`'s predecessor count.
    #[inline]
    pub fn pred_count(&self, task: TaskId) -> u32 {
        self.pred_count[task.index()]
    }

    /// The static `criticality(c)` level of `task`'s type. Equals
    /// `StaticAnnotations::classify_level` by construction, which is what
    /// lets engines skip the virtual estimator call for annotation-static
    /// estimators.
    #[inline]
    pub fn crit_level(&self, task: TaskId) -> u8 {
        self.crit_level[task.index()]
    }

    /// Static criticality levels for all tasks, in task order.
    #[inline]
    pub fn crit_levels(&self) -> &[u8] {
        &self.crit_level
    }

    /// `task`'s CPU work in cycles.
    #[inline]
    pub fn cpu_cycles(&self, task: TaskId) -> u64 {
        self.cpu_cycles[task.index()]
    }

    /// `task`'s memory time in picoseconds.
    #[inline]
    pub fn mem_ps(&self, task: TaskId) -> u64 {
        self.mem_ps[task.index()]
    }

    /// Total CPU work over all tasks, saturating — the weight a
    /// work-balancing partitioner splits on.
    pub fn total_cpu_cycles(&self) -> u64 {
        self.cpu_cycles
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::progress::ExecProfile;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new();
        let normal = g.add_type("normal", 0);
        let hot = g.add_type("hot", 2);
        let a = g.add_task(normal, ExecProfile::new(100, 10), &[]);
        let b = g.add_task(hot, ExecProfile::new(200, 0), &[a]);
        let c = g.add_task(normal, ExecProfile::new(300, 30), &[a]);
        let _d = g.add_task(normal, ExecProfile::new(400, 0), &[b, c]);
        g
    }

    #[test]
    fn view_mirrors_graph() {
        let g = diamond();
        let v = GraphView::from_graph(&g);
        assert_eq!(v.num_tasks(), g.num_tasks());
        assert_eq!(v.num_edges(), g.num_edges());
        for t in g.task_ids() {
            assert_eq!(v.succs(t), g.succs(t), "succs of {t}");
            assert_eq!(v.pred_count(t), g.preds(t).len() as u32, "preds of {t}");
            assert_eq!(v.crit_level(t), g.type_of(t).criticality);
            assert_eq!(v.cpu_cycles(t), g.task(t).profile.cpu_cycles);
            assert_eq!(v.mem_ps(t), g.task(t).profile.mem_ps);
        }
        assert_eq!(v.total_cpu_cycles(), 1000);
    }

    #[test]
    fn span_walk_matches_slice() {
        let g = diamond();
        let v = GraphView::from_graph(&g);
        for t in g.task_ids() {
            let walked: Vec<TaskId> = v.succ_span(t).map(|i| v.succ_at(i)).collect();
            assert_eq!(walked, v.succs(t));
        }
    }

    #[test]
    fn rebuild_reuses_buffers_and_resnapshots() {
        let big = diamond();
        let mut v = GraphView::from_graph(&big);
        let mut small = TaskGraph::new();
        let ty = small.add_type("only", 1);
        small.add_task(ty, ExecProfile::new(7, 0), &[]);
        v.rebuild(&small);
        assert_eq!(v.num_tasks(), 1);
        assert_eq!(v.num_edges(), 0);
        assert_eq!(v.pred_counts(), &[0]);
        assert_eq!(v.crit_levels(), &[1]);
        v.rebuild(&big);
        assert_eq!(v.num_tasks(), 4);
        assert_eq!(v.succs(TaskId(0)), &[TaskId(1), TaskId(2)]);
    }
}
