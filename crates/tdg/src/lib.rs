//! # cata-tdg — task dependence graph substrate
//!
//! Task-based programming models (OpenMP 4.0, OmpSs/Nanos++ — the runtime the
//! paper extends) manage execution through a **task dependence graph (TDG)**:
//! a DAG whose nodes are task instances and whose edges are data dependences.
//! This crate is the from-scratch stand-in for that runtime layer:
//!
//! - [`task`]: task instances, task *types* (one per `#pragma omp task`
//!   annotation site, carrying the paper's `criticality(c)` clause), and
//!   execution profiles;
//! - [`graph`]: the TDG itself, built incrementally in submission order —
//!   dependences may only point at already-submitted tasks, so the graph is
//!   acyclic by construction, exactly like a real task runtime;
//! - [`view`]: a structure-of-arrays snapshot of the dispatch-hot graph
//!   fields (CSR successor lists, predecessor counts, criticality levels,
//!   profile work) that the engines rebuild once per run so their inner
//!   loops touch contiguous memory instead of per-task structs;
//! - [`deps`]: OmpSs-style derivation of edges from `in`/`out`/`inout` data
//!   accesses (RAW, WAR and WAW dependences over named regions);
//! - [`bottom_level`]: the incremental bottom-level computation of
//!   CATS \[24\], including the ancestor-walk **cost accounting** that the
//!   paper charges against the `CATS+BL` configuration;
//! - [`criticality`]: the two criticality estimators compared in the paper —
//!   static annotations (`CATS+SA`/CATA) and dynamic bottom-level
//!   (`CATS+BL`);
//! - [`file`]: the portable `.tdg.json` form of a graph — a schema-tagged,
//!   digest-pinned [`TdgFile`] convertible losslessly to and from
//!   [`TaskGraph`], so captured graphs are storable, shareable, replayable
//!   workloads.
//!
//! ```
//! use cata_tdg::graph::TaskGraph;
//! use cata_tdg::criticality::{CriticalityEstimator, StaticAnnotations};
//! use cata_sim::progress::ExecProfile;
//!
//! let mut g = TaskGraph::new();
//! let critical_ty = g.add_type("solve", 1);     // #pragma omp task criticality(1)
//! let normal_ty = g.add_type("prepare", 0);     // #pragma omp task criticality(0)
//!
//! let a = g.add_task(normal_ty, ExecProfile::new(1000, 0), &[]);
//! let b = g.add_task(critical_ty, ExecProfile::new(9000, 0), &[a]);
//!
//! let mut sa = StaticAnnotations;
//! assert!(!sa.classify(&g, a));
//! assert!(sa.classify(&g, b));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bottom_level;
pub mod criticality;
pub mod deps;
pub mod file;
pub mod graph;
pub mod task;
pub mod view;

pub use criticality::{BottomLevelEstimator, CriticalityEstimator, StaticAnnotations};
pub use file::{fnv1a_hex, TdgFile, TdgFileError, TdgHandle, TdgTask, TDG_SCHEMA};
pub use graph::TaskGraph;
pub use task::{TaskId, TypeId};
pub use view::GraphView;
