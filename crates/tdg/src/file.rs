//! `TdgFile`: the portable, versioned on-disk form of a [`TaskGraph`].
//!
//! A [`TaskGraph`] is a runtime data structure; a `TdgFile` is the same
//! graph as a *storable workload*: a schema-tagged, serde-serializable
//! (JSON/TOML) document carrying the task types with their criticality
//! annotations, one entry per task instance (execution profile plus the
//! dependence list), and an FNV-1a content digest that pins the payload.
//! Conversion is lossless both ways — [`TdgFile::from_graph`] and
//! [`TdgFile::to_graph`] round-trip topology, profiles and criticalities
//! bit-exactly — so a graph captured from a generator, a custom
//! application, or an observed native run can be exported, shared, edited
//! and replayed as a first-class workload.
//!
//! Task ids are implicit: entry `i` of [`tasks`](TdgFile::tasks) is task
//! `i`, and dependences may only reference earlier entries — the same
//! submission-order invariant the in-memory graph enforces, checked by
//! [`to_graph`](TdgFile::to_graph).

use crate::graph::TaskGraph;
use crate::task::{TaskId, TaskType, TypeId};
use cata_sim::progress::ExecProfile;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// Format tag carried by every TDG file; bumped on breaking layout changes.
pub const TDG_SCHEMA: &str = "cata-tdg/v1";

/// FNV-1a over a byte stream, rendered as 16 hex digits. The one digest
/// function of the whole workspace — now implemented in
/// [`cata_sim::seeded`] and re-exported here so every historical call
/// path (`cata_tdg::fnv1a_hex`) keeps compiling unchanged.
pub use cata_sim::seeded::fnv1a_hex;

/// One task entry of a [`TdgFile`]: its type (by index into
/// [`types`](TdgFile::types)), its execution profile, and the indices of
/// the earlier tasks it depends on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdgTask {
    /// Index into the file's type table.
    pub ty: u32,
    /// Execution cost model (cycles, memory time, blocking points).
    pub profile: ExecProfile,
    /// Indices of this task's dependences; each must be smaller than the
    /// task's own position.
    pub deps: Vec<u32>,
}

/// A serializable task dependence graph: the unit of capture and replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdgFile {
    /// Format tag ([`TDG_SCHEMA`]).
    pub schema: String,
    /// Workload name; replayed runs report it as their workload label, so
    /// a replay of an exported generator is indistinguishable from the
    /// generator run itself.
    pub name: String,
    /// The task types with their static criticality annotations.
    pub types: Vec<TaskType>,
    /// The task instances in submission (= topological) order.
    pub tasks: Vec<TdgTask>,
    /// FNV-1a digest of the payload (see [`content_digest`]
    /// (Self::content_digest)). The empty string opts out of verification —
    /// the hand-authoring escape hatch; [`refresh_digest`]
    /// (Self::refresh_digest) re-pins an edited file.
    pub digest: String,
}

/// Anything that can make a [`TdgFile`] unusable.
#[derive(Debug, Clone, PartialEq)]
pub enum TdgFileError {
    /// The schema tag is not [`TDG_SCHEMA`].
    Schema(String),
    /// The embedded (or externally pinned) digest does not match the
    /// content.
    Digest {
        /// The digest the content hashes to.
        actual: String,
        /// The digest that was expected.
        expected: String,
    },
    /// A task references an unknown type or a non-earlier dependence.
    Structure(String),
    /// The file could not be parsed.
    Parse(String),
}

impl fmt::Display for TdgFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdgFileError::Schema(got) => {
                write!(f, "unsupported TDG schema `{got}` (want {TDG_SCHEMA})")
            }
            TdgFileError::Digest { actual, expected } => write!(
                f,
                "TDG digest mismatch: content hashes to {actual}, expected {expected} \
                 (edited without refreshing the digest, or the wrong file?)"
            ),
            TdgFileError::Structure(msg) => write!(f, "malformed TDG: {msg}"),
            TdgFileError::Parse(msg) => write!(f, "TDG parse error: {msg}"),
        }
    }
}

impl std::error::Error for TdgFileError {}

impl TdgFile {
    /// Captures a graph as a named, digest-pinned file.
    pub fn from_graph(name: impl Into<String>, graph: &TaskGraph) -> Self {
        let types = (0..graph.num_types())
            .map(|i| graph.task_type(TypeId(i as u32)).clone())
            .collect();
        let tasks = graph
            .tasks()
            .map(|t| TdgTask {
                ty: t.ty.0,
                profile: t.profile.clone(),
                deps: t.preds().iter().map(|p| p.0).collect(),
            })
            .collect();
        let mut file = TdgFile {
            schema: TDG_SCHEMA.to_string(),
            name: name.into(),
            types,
            tasks,
            digest: String::new(),
        };
        file.digest = file.content_digest();
        file
    }

    /// Reconstructs the in-memory graph. Verifies the schema tag, the
    /// embedded digest (unless empty), and the structural invariants —
    /// known types, earlier-only dependences — then rebuilds through the
    /// same submission path a runtime would use, so the result satisfies
    /// every [`TaskGraph`] invariant by construction.
    pub fn to_graph(&self) -> Result<TaskGraph, TdgFileError> {
        self.verify()?;
        let mut graph = TaskGraph::with_capacity(self.tasks.len());
        for ty in &self.types {
            graph.add_type(ty.name.clone(), ty.criticality);
        }
        let mut deps: Vec<TaskId> = Vec::new();
        for (i, task) in self.tasks.iter().enumerate() {
            if task.ty as usize >= self.types.len() {
                return Err(TdgFileError::Structure(format!(
                    "task {i} names unknown type {} ({} types declared)",
                    task.ty,
                    self.types.len()
                )));
            }
            deps.clear();
            for &d in &task.deps {
                if d as usize >= i {
                    return Err(TdgFileError::Structure(format!(
                        "task {i} depends on non-earlier task {d}"
                    )));
                }
                deps.push(TaskId(d));
            }
            graph.add_task(TypeId(task.ty), task.profile.clone(), &deps);
        }
        Ok(graph)
    }

    /// The FNV-1a digest of the payload: the compact JSON of the name,
    /// types and tasks (everything but the schema tag and the digest field
    /// itself). Deterministic across processes — the vendored serde
    /// serializes fields in declaration order.
    pub fn content_digest(&self) -> String {
        let payload = Value::Seq(vec![
            serde::Serialize::to_value(&self.name),
            serde::Serialize::to_value(&self.types),
            serde::Serialize::to_value(&self.tasks),
        ]);
        let text = serde_json::to_string(&payload).expect("TDG payload serializes");
        fnv1a_hex(text.bytes())
    }

    /// Checks the schema tag and — unless the file opted out with an
    /// empty digest — that the embedded digest matches the content, and
    /// returns the *computed* content digest. This is the whole
    /// header-integrity check in one place: [`to_graph`](Self::to_graph)
    /// runs it before rebuilding, and graph caches run it before trusting
    /// a digest as a cache identity (a cache probe that skipped it would
    /// accept or reject an invalid file depending on cache warmth).
    pub fn verify(&self) -> Result<String, TdgFileError> {
        if self.schema != TDG_SCHEMA {
            return Err(TdgFileError::Schema(self.schema.clone()));
        }
        let actual = self.content_digest();
        if !self.digest.is_empty() && actual != self.digest {
            return Err(TdgFileError::Digest {
                actual,
                expected: self.digest.clone(),
            });
        }
        Ok(actual)
    }

    /// Re-pins the digest after an edit.
    pub fn refresh_digest(&mut self) {
        self.digest = self.content_digest();
    }

    /// Number of task instances.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Exact total work in cycles — Σ `cpu_cycles` over every task. The
    /// basis of cost-aware shard ordering for replayed workloads (memory
    /// and block time are excluded: ordering only needs a consistent
    /// rank, and cycles dominate every shipped workload).
    pub fn total_work_cycles(&self) -> u64 {
        self.tasks
            .iter()
            .fold(0u64, |acc, t| acc.saturating_add(t.profile.cpu_cycles))
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("TDG file serializes")
    }

    /// Serializes to pretty JSON — the `.tdg.json` artifact format.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("TDG file serializes")
    }

    /// Parses a JSON TDG file.
    pub fn from_json(text: &str) -> Result<Self, TdgFileError> {
        serde_json::from_str(text).map_err(|e| TdgFileError::Parse(e.to_string()))
    }

    /// Serializes to TOML.
    pub fn to_toml(&self) -> String {
        toml::to_string(self).expect("TDG file serializes")
    }

    /// Parses a TOML TDG file.
    pub fn from_toml(text: &str) -> Result<Self, TdgFileError> {
        toml::from_str(text).map_err(|e| TdgFileError::Parse(e.to_string()))
    }
}

/// A hash-consed, immutable handle to a [`TdgFile`] that memoizes
/// [`verify`](TdgFile::verify).
///
/// `verify` serializes the whole payload to compute the content digest —
/// O(file size) — which is fine once per load but not once per *cache
/// probe*: the scenario graph cache digests its inline workload on every
/// build, and service mode replays the same TDG thousands of times per
/// run. The handle shares one `Arc`'d file and computes the verification
/// result exactly once; clones are pointer copies and every subsequent
/// probe is a `OnceLock` read.
///
/// The handle is deliberately immutable (no `DerefMut`): a memoized
/// verdict over a mutable file would go stale. To edit, clone the inner
/// file ([`Deref`] exposes it), edit, and re-wrap.
///
/// Serde delegates to the inner [`TdgFile`], so handles are byte-identical
/// to plain files on disk and in digests.
#[derive(Debug, Clone)]
pub struct TdgHandle {
    file: Arc<TdgFile>,
    verified: Arc<OnceLock<Result<String, TdgFileError>>>,
}

impl TdgHandle {
    /// Wraps a file. No verification happens until the first
    /// [`verify_cached`](Self::verify_cached).
    pub fn new(file: TdgFile) -> Self {
        TdgHandle {
            file: Arc::new(file),
            verified: Arc::new(OnceLock::new()),
        }
    }

    /// [`TdgFile::verify`], computed once per handle and shared by every
    /// clone.
    pub fn verify_cached(&self) -> Result<String, TdgFileError> {
        self.verified.get_or_init(|| self.file.verify()).clone()
    }
}

impl From<TdgFile> for TdgHandle {
    fn from(file: TdgFile) -> Self {
        TdgHandle::new(file)
    }
}

impl Deref for TdgHandle {
    type Target = TdgFile;

    fn deref(&self) -> &TdgFile {
        &self.file
    }
}

impl PartialEq for TdgHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.file, &other.file) || *self.file == *other.file
    }
}

impl Serialize for TdgHandle {
    fn to_value(&self) -> Value {
        self.file.to_value()
    }
}

impl Deserialize for TdgHandle {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        TdgFile::from_value(v).map(TdgHandle::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::time::SimDuration;

    fn sample_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let norm = g.add_type("prepare", 0);
        let crit = g.add_type("solve", 2);
        let a = g.add_task(norm, ExecProfile::new(1_000, 50), &[]);
        let b = g.add_task(
            crit,
            ExecProfile::new(9_000, 0).with_block(0.5, SimDuration::from_ns(400)),
            &[a],
        );
        let c = g.add_task(norm, ExecProfile::new(2_000, 10), &[a]);
        g.add_task(crit, ExecProfile::new(500, 0), &[b, c]);
        g
    }

    #[test]
    fn round_trip_is_lossless() {
        let g = sample_graph();
        let file = TdgFile::from_graph("sample", &g);
        assert_eq!(file.schema, TDG_SCHEMA);
        assert_eq!(file.digest, file.content_digest());
        let back = file.to_graph().unwrap();
        assert_eq!(
            back, g,
            "TaskGraph -> TdgFile -> TaskGraph must be identity"
        );
        back.validate().unwrap();
    }

    #[test]
    fn json_and_toml_round_trip() {
        let file = TdgFile::from_graph("sample", &sample_graph());
        let json = file.to_json_pretty();
        assert_eq!(TdgFile::from_json(&json).unwrap(), file);
        let toml_text = file.to_toml();
        assert_eq!(TdgFile::from_toml(&toml_text).unwrap(), file);
    }

    #[test]
    fn digest_sees_every_payload_field() {
        let base = TdgFile::from_graph("sample", &sample_graph());
        let mut renamed = base.clone();
        renamed.name = "other".into();
        assert_ne!(base.content_digest(), renamed.content_digest());
        let mut edited = base.clone();
        edited.tasks[0].profile.cpu_cycles += 1;
        assert_ne!(base.content_digest(), edited.content_digest());
        // The digest field itself is not part of the digest.
        let mut cleared = base.clone();
        cleared.digest = String::new();
        assert_eq!(base.content_digest(), cleared.content_digest());
    }

    #[test]
    fn stale_digest_is_rejected_and_refresh_fixes_it() {
        let mut file = TdgFile::from_graph("sample", &sample_graph());
        file.tasks[1].profile.cpu_cycles *= 2; // edit without refreshing
        assert!(matches!(file.to_graph(), Err(TdgFileError::Digest { .. })));
        file.refresh_digest();
        file.to_graph().unwrap();
        // The empty digest opts out (hand-authored files).
        file.tasks[1].profile.cpu_cycles *= 2;
        file.digest = String::new();
        file.to_graph().unwrap();
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut file = TdgFile::from_graph("sample", &sample_graph());
        file.schema = "cata-tdg/v999".into();
        file.refresh_digest();
        assert!(matches!(file.to_graph(), Err(TdgFileError::Schema(_))));
    }

    #[test]
    fn forward_and_unknown_references_are_rejected() {
        let mut file = TdgFile::from_graph("sample", &sample_graph());
        file.tasks[0].deps = vec![3];
        file.refresh_digest();
        assert!(matches!(file.to_graph(), Err(TdgFileError::Structure(_))));

        let mut file = TdgFile::from_graph("sample", &sample_graph());
        file.tasks[2].ty = 9;
        file.refresh_digest();
        assert!(matches!(file.to_graph(), Err(TdgFileError::Structure(_))));
    }

    #[test]
    fn total_work_sums_profiles_exactly() {
        let file = TdgFile::from_graph("sample", &sample_graph());
        assert_eq!(file.total_work_cycles(), 1_000 + 9_000 + 2_000 + 500);
        assert_eq!(file.num_tasks(), 4);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = TaskGraph::new();
        let file = TdgFile::from_graph("empty", &g);
        assert_eq!(file.to_graph().unwrap(), g);
    }

    #[test]
    fn handle_memoizes_verification_and_shares_it_with_clones() {
        let file = TdgFile::from_graph("sample", &sample_graph());
        let want = file.digest.clone();
        let handle = TdgHandle::new(file);
        assert_eq!(handle.verify_cached().unwrap(), want);
        // A clone sees the memoized verdict without recomputing.
        let clone = handle.clone();
        assert!(Arc::ptr_eq(&handle.verified, &clone.verified));
        assert_eq!(clone.verify_cached().unwrap(), want);
        // Failures are memoized too.
        let mut bad = TdgFile::from_graph("sample", &sample_graph());
        bad.tasks[0].profile.cpu_cycles += 1; // stale digest
        let bad = TdgHandle::new(bad);
        assert!(matches!(
            bad.verify_cached(),
            Err(TdgFileError::Digest { .. })
        ));
        assert!(matches!(
            bad.verify_cached(),
            Err(TdgFileError::Digest { .. })
        ));
    }

    #[test]
    fn handle_serde_matches_the_plain_file() {
        let file = TdgFile::from_graph("sample", &sample_graph());
        let handle = TdgHandle::new(file.clone());
        assert_eq!(
            serde_json::to_string(&handle).unwrap(),
            serde_json::to_string(&file).unwrap(),
            "handles must be byte-identical to files on the wire"
        );
        let back: TdgHandle = serde_json::from_str(&serde_json::to_string(&file).unwrap()).unwrap();
        assert_eq!(*back, file);
    }
}
