//! Data-dependence derivation, OmpSs style.
//!
//! In OpenMP 4.0 / OmpSs the programmer does not wire graph edges by hand:
//! each task declares the data it reads (`in`), writes (`out`) or both
//! (`inout`), and the runtime derives the edges — read-after-write,
//! write-after-read and write-after-write over each datum. [`DepTracker`]
//! implements that derivation over abstract *regions* (a region id stands
//! for an address range in the real runtime).

use crate::task::TaskId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An abstract datum (address range) tasks can depend through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegionId(pub u64);

/// How a task accesses a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMode {
    /// `in(x)`: the task reads the region.
    In,
    /// `out(x)`: the task overwrites the region.
    Out,
    /// `inout(x)`: the task reads then writes the region.
    InOut,
}

impl AccessMode {
    /// True for `in` and `inout`.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::In | AccessMode::InOut)
    }

    /// True for `out` and `inout`.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Out | AccessMode::InOut)
    }
}

#[derive(Debug, Clone, Default)]
struct RegionState {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// Derives dependence edges from declared data accesses, in submission order.
#[derive(Debug, Clone, Default)]
pub struct DepTracker {
    regions: HashMap<RegionId, RegionState>,
}

impl DepTracker {
    /// An empty tracker (no task has touched any region).
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the dependences of `task` given its declared accesses and
    /// updates the region states. The returned list is deduplicated and in
    /// deterministic (sorted) order, ready for
    /// [`TaskGraph::add_task`](crate::graph::TaskGraph::add_task).
    ///
    /// Dependence rules per region:
    /// - a **read** depends on the last writer (RAW);
    /// - a **write** depends on the last writer (WAW) *and* on every reader
    ///   since that write (WAR), then clears the reader set and becomes the
    ///   last writer.
    pub fn deps_for(&mut self, task: TaskId, accesses: &[(RegionId, AccessMode)]) -> Vec<TaskId> {
        let mut deps = Vec::new();
        for &(region, mode) in accesses {
            let st = self.regions.entry(region).or_default();
            if mode.reads() {
                if let Some(w) = st.last_writer {
                    deps.push(w);
                }
            }
            if mode.writes() {
                if let Some(w) = st.last_writer {
                    deps.push(w);
                }
                deps.extend(st.readers_since_write.iter().copied());
            }
            // State updates: writes reset readers and take ownership; reads
            // register. An inout does both (it is ordered after prior
            // readers and becomes the new writer).
            if mode.writes() {
                st.readers_since_write.clear();
                st.last_writer = Some(task);
            }
            if mode == AccessMode::In {
                st.readers_since_write.push(task);
            }
        }
        deps.retain(|&d| d != task);
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    /// Number of regions ever touched.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: RegionId = RegionId(1);
    const S: RegionId = RegionId(2);

    #[test]
    fn raw_dependence() {
        let mut d = DepTracker::new();
        assert!(d.deps_for(TaskId(0), &[(R, AccessMode::Out)]).is_empty());
        assert_eq!(
            d.deps_for(TaskId(1), &[(R, AccessMode::In)]),
            vec![TaskId(0)]
        );
    }

    #[test]
    fn war_dependence() {
        let mut d = DepTracker::new();
        d.deps_for(TaskId(0), &[(R, AccessMode::Out)]);
        d.deps_for(TaskId(1), &[(R, AccessMode::In)]);
        d.deps_for(TaskId(2), &[(R, AccessMode::In)]);
        // Writer after two readers depends on both readers (WAR) and the
        // previous writer (WAW).
        let deps = d.deps_for(TaskId(3), &[(R, AccessMode::Out)]);
        assert_eq!(deps, vec![TaskId(0), TaskId(1), TaskId(2)]);
    }

    #[test]
    fn waw_dependence_chains_writers() {
        let mut d = DepTracker::new();
        d.deps_for(TaskId(0), &[(R, AccessMode::Out)]);
        assert_eq!(
            d.deps_for(TaskId(1), &[(R, AccessMode::Out)]),
            vec![TaskId(0)]
        );
        assert_eq!(
            d.deps_for(TaskId(2), &[(R, AccessMode::Out)]),
            vec![TaskId(1)]
        );
    }

    #[test]
    fn independent_readers_share_no_edge() {
        let mut d = DepTracker::new();
        d.deps_for(TaskId(0), &[(R, AccessMode::Out)]);
        let d1 = d.deps_for(TaskId(1), &[(R, AccessMode::In)]);
        let d2 = d.deps_for(TaskId(2), &[(R, AccessMode::In)]);
        assert_eq!(d1, d2); // both only depend on the writer
    }

    #[test]
    fn inout_orders_after_readers_and_becomes_writer() {
        let mut d = DepTracker::new();
        d.deps_for(TaskId(0), &[(R, AccessMode::Out)]);
        d.deps_for(TaskId(1), &[(R, AccessMode::In)]);
        let deps = d.deps_for(TaskId(2), &[(R, AccessMode::InOut)]);
        assert_eq!(deps, vec![TaskId(0), TaskId(1)]);
        // Subsequent reader sees task 2 as the writer.
        assert_eq!(
            d.deps_for(TaskId(3), &[(R, AccessMode::In)]),
            vec![TaskId(2)]
        );
    }

    #[test]
    fn multi_region_accesses_union_dependences() {
        let mut d = DepTracker::new();
        d.deps_for(TaskId(0), &[(R, AccessMode::Out)]);
        d.deps_for(TaskId(1), &[(S, AccessMode::Out)]);
        let deps = d.deps_for(TaskId(2), &[(R, AccessMode::In), (S, AccessMode::In)]);
        assert_eq!(deps, vec![TaskId(0), TaskId(1)]);
        assert_eq!(d.num_regions(), 2);
    }

    #[test]
    fn duplicate_dependences_are_deduplicated() {
        let mut d = DepTracker::new();
        d.deps_for(TaskId(0), &[(R, AccessMode::Out), (S, AccessMode::Out)]);
        let deps = d.deps_for(TaskId(1), &[(R, AccessMode::In), (S, AccessMode::In)]);
        assert_eq!(deps, vec![TaskId(0)]);
    }

    #[test]
    fn stencil_pattern_yields_expected_parent_count() {
        // A 1-D 3-point stencil: step-2 cell i writes region i reading
        // {i-1, i, i+1} of step 1 — three parents per interior task, like
        // (a slice of) Fluidanimate's dense TDG.
        let mut d = DepTracker::new();
        let n = 5u64;
        for i in 0..n {
            d.deps_for(TaskId(i as u32), &[(RegionId(i), AccessMode::Out)]);
        }
        for i in 1..n - 1 {
            let t = TaskId((n + i) as u32);
            let deps = d.deps_for(
                t,
                &[
                    (RegionId(i - 1), AccessMode::In),
                    (RegionId(i + 1), AccessMode::In),
                    (RegionId(i), AccessMode::InOut),
                ],
            );
            assert_eq!(deps.len(), 3, "interior stencil task must have 3 parents");
        }
    }
}
