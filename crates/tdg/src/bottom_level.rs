//! Incremental bottom-level computation (the CATS \[24\] dynamic criticality
//! metric).
//!
//! The **bottom level** (BL) of a task is the length, in tasks, of the
//! longest dependency path from it to a leaf of the TDG. CATS recomputes BLs
//! as the graph grows: a newly submitted task is a leaf (BL = 0) and its
//! insertion can raise the BL of its ancestors, which are updated by walking
//! predecessor chains.
//!
//! The walk is not free — the paper's §V-A attributes the `CATS+BL`
//! slowdowns (up to 9.8 % on Fluidanimate, whose tasks have up to nine
//! parents) to exactly this TDG exploration. [`BottomLevels::on_submit`]
//! therefore returns the number of node visits performed, which the
//! simulation charges as runtime overhead on the submitting core.

use crate::graph::TaskGraph;
use crate::task::TaskId;

/// Incrementally maintained bottom levels over a growing TDG.
#[derive(Debug, Clone)]
pub struct BottomLevels {
    bl: Vec<u32>,
    max_bl: u32,
    total_visits: u64,
    /// Per-submission cap on the relaxation walk. CATS \[24\] explores only
    /// a sub-graph of the TDG (the paper's §II-B third limitation); the cap
    /// is both that window and the safeguard against the O(n²) worst case
    /// on dense graphs — truncated walks leave *approximate* (under-
    /// estimated) ancestor BLs, which is part of why BL misclassifies.
    visit_cap: u64,
}

impl Default for BottomLevels {
    fn default() -> Self {
        Self::new()
    }
}

impl BottomLevels {
    /// Default per-submission exploration window.
    pub const DEFAULT_VISIT_CAP: u64 = 256;

    /// Empty state with the default exploration window.
    pub fn new() -> Self {
        Self::with_visit_cap(Self::DEFAULT_VISIT_CAP)
    }

    /// Empty state with an explicit per-submission walk cap
    /// (`u64::MAX` = exact bottom levels).
    pub fn with_visit_cap(visit_cap: u64) -> Self {
        BottomLevels {
            bl: Vec::new(),
            max_bl: 0,
            total_visits: 0,
            visit_cap: visit_cap.max(1),
        }
    }

    /// Exact (uncapped) incremental bottom levels.
    pub fn exact() -> Self {
        Self::with_visit_cap(u64::MAX)
    }

    /// Integrates the just-submitted `task` (which must be the most recent
    /// task in `graph`) and updates ancestor BLs. Returns the number of node
    /// visits performed, the unit of runtime overhead charged to `CATS+BL`.
    pub fn on_submit(&mut self, graph: &TaskGraph, task: TaskId) -> u64 {
        self.on_submit_with(graph, task, |_, _, _| {})
    }

    /// Like [`on_submit`](Self::on_submit), additionally invoking
    /// `on_change(task, old_bl, new_bl)` for every task whose BL is set or
    /// raised (including the new task's initial `BL = 0`, reported as
    /// `old_bl == new_bl == 0`). Callers that mirror BLs in their own
    /// structures (e.g. the pending-max multiset of
    /// [`BottomLevelEstimator`](crate::criticality::BottomLevelEstimator))
    /// use this to stay coherent as ancestor BLs rise.
    pub fn on_submit_with(
        &mut self,
        graph: &TaskGraph,
        task: TaskId,
        mut on_change: impl FnMut(TaskId, u32, u32),
    ) -> u64 {
        // Tasks must be integrated in submission order, but the graph object
        // itself may already contain later tasks (the simulator pre-builds
        // the full TDG and replays submissions over it) — only the
        // estimator's own horizon matters, and the ancestor walk below never
        // touches tasks after `task`.
        debug_assert_eq!(self.bl.len(), task.index(), "on_submit out of order");
        debug_assert!(task.index() < graph.num_tasks());
        self.bl.push(0);
        on_change(task, 0, 0);

        // Relaxation walk: raising a node's BL may raise its predecessors'.
        // The walk is truncated at `visit_cap` visits (the CATS sub-graph
        // window); beyond it, ancestor BLs stay stale.
        let mut visits = 1u64; // the new task itself
        let mut stack = vec![task];
        'walk: while let Some(t) = stack.pop() {
            let next = self.bl[t.index()] + 1;
            for &p in graph.preds(t) {
                visits += 1;
                let old = self.bl[p.index()];
                if old < next {
                    self.bl[p.index()] = next;
                    self.max_bl = self.max_bl.max(next);
                    on_change(p, old, next);
                    stack.push(p);
                }
                if visits >= self.visit_cap {
                    break 'walk;
                }
            }
        }
        self.total_visits += visits;
        visits
    }

    /// The bottom level of a submitted task.
    pub fn bl(&self, task: TaskId) -> u32 {
        self.bl[task.index()]
    }

    /// The largest BL over all submitted tasks.
    pub fn max_bl(&self) -> u32 {
        self.max_bl
    }

    /// Number of tasks integrated.
    pub fn len(&self) -> usize {
        self.bl.len()
    }

    /// True if no tasks have been integrated.
    pub fn is_empty(&self) -> bool {
        self.bl.is_empty()
    }

    /// Total node visits across all submissions (aggregate overhead).
    pub fn total_visits(&self) -> u64 {
        self.total_visits
    }

    /// Reference batch computation over a complete graph: `BL(t) = 0` for
    /// leaves, else `1 + max(BL(succ))`. Used by tests to validate the
    /// incremental algorithm.
    pub fn recompute_batch(graph: &TaskGraph) -> Vec<u32> {
        let n = graph.num_tasks();
        let mut bl = vec![0u32; n];
        // Reverse topological order = reverse submission order.
        for i in (0..n).rev() {
            let id = TaskId(i as u32);
            bl[i] = graph
                .succs(id)
                .iter()
                .map(|s| bl[s.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        bl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cata_sim::progress::ExecProfile;

    fn p() -> ExecProfile {
        ExecProfile::new(1, 0)
    }

    /// Builds a graph and BLs together, asserting incremental == batch after
    /// every submission.
    fn build_checked(edges: &[&[u32]]) -> (TaskGraph, BottomLevels) {
        let mut g = TaskGraph::new();
        let ty = g.add_type("t", 0);
        let mut bls = BottomLevels::exact();
        for deps in edges {
            let deps: Vec<TaskId> = deps.iter().map(|&d| TaskId(d)).collect();
            let id = g.add_task(ty, p(), &deps);
            bls.on_submit(&g, id);
            let batch = BottomLevels::recompute_batch(&g);
            for t in g.task_ids() {
                assert_eq!(bls.bl(t), batch[t.index()], "mismatch at {t} after {id}");
            }
        }
        (g, bls)
    }

    #[test]
    fn chain_bottom_levels() {
        // 0 <- 1 <- 2 <- 3: BL(0)=3 ... BL(3)=0.
        let (_, bls) = build_checked(&[&[], &[0], &[1], &[2]]);
        assert_eq!(bls.bl(TaskId(0)), 3);
        assert_eq!(bls.bl(TaskId(3)), 0);
        assert_eq!(bls.max_bl(), 3);
    }

    #[test]
    fn diamond_bottom_levels() {
        // 0 -> {1, 2} -> 3.
        let (_, bls) = build_checked(&[&[], &[0], &[0], &[1, 2]]);
        assert_eq!(bls.bl(TaskId(0)), 2);
        assert_eq!(bls.bl(TaskId(1)), 1);
        assert_eq!(bls.bl(TaskId(2)), 1);
        assert_eq!(bls.bl(TaskId(3)), 0);
    }

    #[test]
    fn independent_tasks_have_zero_bl() {
        let (_, bls) = build_checked(&[&[], &[], &[]]);
        for i in 0..3 {
            assert_eq!(bls.bl(TaskId(i)), 0);
        }
        assert_eq!(bls.max_bl(), 0);
    }

    #[test]
    fn visit_cost_grows_with_parent_density() {
        // A dense graph (every task depends on all previous) must cost more
        // visits than a chain of the same size — the Fluidanimate effect.
        let mut dense_g = TaskGraph::new();
        let ty = dense_g.add_type("t", 0);
        let mut dense = BottomLevels::exact();
        let mut all: Vec<TaskId> = Vec::new();
        for _ in 0..10 {
            let id = dense_g.add_task(ty, p(), &all);
            dense.on_submit(&dense_g, id);
            all.push(id);
        }

        let mut chain_g = TaskGraph::new();
        let ty2 = chain_g.add_type("t", 0);
        let mut chain = BottomLevels::exact();
        let mut prev: Option<TaskId> = None;
        for _ in 0..10 {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            let id = chain_g.add_task(ty2, p(), &deps);
            chain.on_submit(&chain_g, id);
            prev = Some(id);
        }

        assert!(
            dense.total_visits() > chain.total_visits(),
            "dense {} <= chain {}",
            dense.total_visits(),
            chain.total_visits()
        );
    }

    #[test]
    fn incremental_matches_batch_on_random_dags() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xCA7A);
        for _ in 0..20 {
            let n = rng.gen_range(1..60);
            let mut g = TaskGraph::new();
            let ty = g.add_type("t", 0);
            let mut bls = BottomLevels::exact();
            for i in 0..n {
                let mut deps = Vec::new();
                for j in 0..i {
                    if rng.gen_bool(0.15) {
                        deps.push(TaskId(j));
                    }
                }
                let id = g.add_task(ty, p(), &deps);
                bls.on_submit(&g, id);
            }
            let batch = BottomLevels::recompute_batch(&g);
            for t in g.task_ids() {
                assert_eq!(bls.bl(t), batch[t.index()]);
            }
        }
    }
}
