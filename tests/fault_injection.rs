//! Fault injection & recovery integration tests: golden-absence (the
//! fault subsystem changes *nothing* when no `FaultSpec` is present),
//! displacement/recovery behavior, graceful degradation in service mode,
//! same-seed determinism of the `FaultReport`, and a conservation
//! proptest over random DAGs under random fault schedules.

use cata_core::exp::{default_registries, spec_digest, ExpError, ScenarioSpec, WorkloadSpec};
use cata_core::fault::{CoreFailure, FaultSpec};
use cata_core::service::{default_admission_registry, run_service, ArrivalSpec, ServiceSpec};
use cata_core::{RunReport, SimExecutor};
use cata_sim::time::SimDuration;
use proptest::prelude::*;

const SEED: u64 = 42;

/// A small closed-system scenario: 8-core machine, 4 fast, a seeded
/// fork-join workload big enough to still be mid-flight at the injected
/// failure times.
fn base(preset: &str) -> ScenarioSpec {
    let mut spec = ScenarioSpec::preset(
        preset,
        4,
        WorkloadSpec::ForkJoin {
            waves: 8,
            width: 6,
            cycles: 400_000,
        },
    )
    .expect("preset")
    .with_small_machine(8, 4);
    spec.seed = SEED;
    spec
}

fn run(spec: &ScenarioSpec) -> Result<RunReport, ExpError> {
    SimExecutor::default()
        .run_spec(spec, default_registries())
        .map(|(r, _)| r)
}

fn fail_at(core: usize, at: SimDuration, recover_after: Option<SimDuration>) -> CoreFailure {
    CoreFailure {
        core,
        at,
        recover_after,
    }
}

/// Fault-free specs and reports serialize without any fault key at all —
/// the byte-identity guarantee behind every pre-fault store digest and
/// golden preset (the behavioral half is pinned by `golden_digest.rs`).
#[test]
fn fault_free_serialization_has_no_fault_keys() {
    let spec = base("CATA");
    assert!(spec.faults.is_none());
    let json = spec.to_json();
    assert!(
        !json.contains("fault"),
        "spec JSON grew a fault key: {json}"
    );

    let report = run(&spec).expect("fault-free run");
    assert!(report.fault.is_none());
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(
        !json.contains("\"fault\""),
        "report JSON grew a fault key: {json}"
    );

    // And a spec that explicitly carries a schedule round-trips it.
    let mut faulted = base("CATA");
    faulted.faults = Some(FaultSpec {
        core_failures: vec![fail_at(0, SimDuration::from_ms(1), None)],
        ..FaultSpec::default()
    });
    let back = ScenarioSpec::from_json(&faulted.to_json()).expect("parse");
    assert_eq!(back.faults, faulted.faults);
    assert_ne!(
        spec_digest(&faulted),
        spec_digest(&base("CATA")),
        "a faulted cell must be a different cell"
    );
}

/// A permanent mid-run core loss displaces the in-flight task, re-runs it
/// on a survivor, and the run still completes every task.
#[test]
fn permanent_core_loss_displaces_and_completes() {
    let mut spec = base("CATA");
    let total = spec.workload.try_build_graph().unwrap().num_tasks() as u64;
    spec.faults = Some(FaultSpec {
        core_failures: vec![
            fail_at(0, SimDuration::from_us(200), None),
            fail_at(5, SimDuration::from_us(400), None),
        ],
        ..FaultSpec::default()
    });
    let report = run(&spec).expect("degraded run completes");
    assert_eq!(report.counters.tasks_completed, total, "lost tasks");
    let f = report.fault.as_ref().expect("fault report present");
    assert_eq!(f.injected, 2);
    assert_eq!(f.recovered_cores, 0);
    assert!(f.displaced >= 1, "mid-run failures displace work: {f:?}");
    assert!(f.reexecuted >= f.displaced);
    assert_eq!(f.recovery_latency.count(), f.displaced);
    assert!(f.capacity_lost > SimDuration::ZERO);
    assert!(
        f.makespan_degradation >= 1.0,
        "losing 2 of 8 cores cannot speed the run up: {}",
        f.makespan_degradation
    );
}

/// A fail-recover window gives the capacity back: the core rejoins
/// dispatch and the capacity ledger charges only the window.
#[test]
fn fail_recover_window_restores_capacity() {
    let window = SimDuration::from_us(300);
    let mut spec = base("CATA");
    spec.faults = Some(FaultSpec {
        core_failures: vec![fail_at(2, SimDuration::from_us(100), Some(window))],
        ..FaultSpec::default()
    });
    let report = run(&spec).expect("run completes");
    let f = report.fault.as_ref().unwrap();
    assert_eq!(f.injected, 1);
    assert_eq!(f.recovered_cores, 1);
    assert_eq!(
        f.capacity_lost, window,
        "a closed recovery window charges exactly its length"
    );
}

/// Same spec + seed ⇒ bit-identical fault trace and report digest; a
/// different seed moves the transient-fault draws.
#[test]
fn fault_reports_are_deterministic_per_seed() {
    let mut spec = base("CATA+RSU");
    spec.faults = Some(FaultSpec {
        core_failures: vec![fail_at(1, SimDuration::from_us(250), None)],
        task_fault_p: 0.05,
        reconfig_fail_p: 0.1,
        ..FaultSpec::default()
    });
    let a = run(&spec).expect("run a");
    let b = run(&spec).expect("run b");
    let (fa, fb) = (a.fault.as_ref().unwrap(), b.fault.as_ref().unwrap());
    assert_eq!(fa, fb, "same seed must replay the same fault trace");
    assert_eq!(fa.digest(), fb.digest());
    assert!(
        fa.task_faults > 0,
        "5% over hundreds of completions: {fa:?}"
    );

    spec.seed = SEED + 1;
    let c = run(&spec).expect("run c");
    let fc = c.fault.as_ref().unwrap();
    assert_eq!(fc.injected, 1, "the schedule is seed-independent");
    assert_ne!(
        fa.digest(),
        fc.digest(),
        "a different seed must move the transient draws"
    );
}

/// An unknown recovery key fails up front, naming the known keys.
#[test]
fn unknown_recovery_key_lists_known_policies() {
    let mut spec = base("CATA");
    spec.faults = Some(FaultSpec {
        core_failures: vec![fail_at(0, SimDuration::from_ms(1), None)],
        recovery: "bogus-policy".into(),
        ..FaultSpec::default()
    });
    let err = run(&spec).unwrap_err().to_string();
    assert!(err.contains("unknown recovery policy"), "{err}");
    assert!(err.contains("retry-same-core"), "{err}");
    assert!(err.contains("shed-noncritical-on-degraded"), "{err}");
}

/// A fault schedule that permanently kills every core is rejected by
/// validation — the engine's clean `Stalled` error is for schedules that
/// strand a run mid-flight, not a way to author one on purpose.
#[test]
fn all_dead_schedule_is_rejected_up_front() {
    let mut spec = base("FIFO");
    spec.faults = Some(FaultSpec {
        core_failures: (0..8)
            .map(|c| fail_at(c, SimDuration::from_us(10), None))
            .collect(),
        ..FaultSpec::default()
    });
    let err = run(&spec).unwrap_err().to_string();
    assert!(err.contains("permanently fails every core"), "{err}");
}

/// Service mode degrades gracefully: core losses under overload shed
/// whole instances (policy `shed-noncritical-on-degraded`) instead of
/// deadlocking, and the instance ledger still balances.
#[test]
fn service_mode_sheds_instances_and_balances() {
    let mut b = base("CATA");
    b.faults = Some(FaultSpec {
        core_failures: vec![
            fail_at(0, SimDuration::from_ms(2), None),
            fail_at(1, SimDuration::from_ms(3), None),
        ],
        recovery: "shed-noncritical-on-degraded".into(),
        ..FaultSpec::default()
    });
    let spec = ServiceSpec::new(
        b,
        ArrivalSpec::Poisson { rate_hz: 4000.0 },
        SimDuration::from_ms(30),
    );
    let (report, _tape) =
        run_service(&spec, default_registries(), default_admission_registry()).expect("service");
    let s = report.service.as_ref().expect("service metrics");
    let f = report.fault.as_ref().expect("fault report");
    assert_eq!(f.injected, 2);
    assert!(
        f.shed > 0,
        "overload on a degraded machine must shed: {f:?}"
    );
    assert_eq!(
        s.admitted,
        s.completed + f.shed,
        "admitted instances either complete or are shed"
    );
    assert!(s.p99() > SimDuration::ZERO);
    // Same seed, same spec: the service-mode fault trace replays too.
    let (again, _) =
        run_service(&spec, default_registries(), default_admission_registry()).expect("service");
    assert_eq!(again.fault.as_ref().unwrap().digest(), f.digest());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation under arbitrary faults: whatever the schedule (cores
    /// failing mid-run, transient task faults) every task of a random DAG
    /// still completes exactly once, the fault ledger is internally
    /// consistent, and displaced work is accounted re-executed.
    #[test]
    fn faulted_runs_conserve_tasks(
        n in 8usize..40,
        p in 0.02f64..0.4,
        seed in any::<u64>(),
        fail_core in 0usize..7,
        fail_at_us in 1u64..500,
        recover_us in 0u64..500,
        task_fault_p in 0.0f64..0.3,
    ) {
        let mut spec = ScenarioSpec::preset(
            "CATA",
            4,
            WorkloadSpec::RandomDag {
                n,
                edge_p: p,
                min_cycles: 10_000,
                max_cycles: 2_000_000,
                seed,
            },
        )
        .expect("preset")
        .with_small_machine(8, 4);
        spec.seed = seed;
        // 0 µs means a permanent failure; anything else a recovery window.
        let recover = (recover_us > 0).then(|| SimDuration::from_us(recover_us));
        spec.faults = Some(FaultSpec {
            core_failures: vec![fail_at(
                fail_core,
                SimDuration::from_us(fail_at_us),
                recover,
            )],
            task_fault_p,
            ..FaultSpec::default()
        });
        let report = run(&spec).expect("faulted run completes");
        prop_assert_eq!(report.counters.tasks_completed, n as u64, "lost tasks");
        let f = report.fault.as_ref().expect("fault report");
        prop_assert_eq!(f.injected, 1);
        prop_assert_eq!(f.recovered_cores, u64::from(recover.is_some()));
        prop_assert!(f.reexecuted >= f.displaced + f.task_faults,
            "every displacement and transient fault re-executes: {:?}", f);
        prop_assert_eq!(f.recovery_latency.count(), f.displaced);
        prop_assert_eq!(f.shed, 0, "closed mode never sheds");
        prop_assert!(f.makespan_degradation > 0.0);
    }
}
