//! Cross-crate integration tests: workload generation → scheduling →
//! acceleration → power, end to end, driven through the `exp` facade
//! (scenarios + executors + suites), plus the native executor running
//! graph-shaped work on real threads.

use cata_core::exp::{Scenario, Suite};
use cata_core::native::NativeRuntime;
use cata_core::{RunConfig, RunReport, ScenarioSpec, SimExecutor, WorkloadSpec};
use cata_cpufreq::software_path::SoftwarePathParams;
use cata_sim::time::SimDuration;
use cata_sim::trace::{Trace, TraceEvent};
use cata_workloads::{micro, Benchmark, Scale};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const SEED: u64 = 0x5EED_CA7A;

fn workload(bench: Benchmark) -> WorkloadSpec {
    WorkloadSpec::parsec(bench, Scale::Tiny, SEED)
}

fn run_spec(spec: ScenarioSpec) -> RunReport {
    Scenario::from_spec(spec)
        .run(&SimExecutor::default())
        .expect("scenario run")
}

fn run_preset(label: &str, fast: usize, w: WorkloadSpec) -> RunReport {
    run_spec(ScenarioSpec::preset(label, fast, w).expect("paper preset"))
}

fn run_traced(spec: ScenarioSpec) -> (RunReport, Trace) {
    SimExecutor::default()
        .run_scenario_traced(&Scenario::from_spec(spec.with_trace()))
        .expect("traced scenario run")
}

/// The three trace modes through the facade: `Counters` tallies every kind
/// a `Full` trace stores — without storing anything — and `Off` (the suite
/// default) collects nothing at all. All three produce the identical
/// report: collection must never perturb the simulation.
#[test]
fn trace_modes_agree_and_only_full_stores() {
    use cata_core::exp::TraceMode;
    let spec = ScenarioSpec::preset("CATA", 2, workload(Benchmark::Dedup))
        .expect("preset")
        .with_small_machine(4, 2);
    let exec = SimExecutor::default();
    let run = |mode: TraceMode| {
        exec.run_scenario_traced(&Scenario::from_spec(spec.clone().with_trace_mode(mode)))
            .expect("traced run")
    };
    let (r_off, t_off) = run(TraceMode::Off);
    let (r_cnt, t_cnt) = run(TraceMode::Counters);
    let (r_full, t_full) = run(TraceMode::Full);

    assert!(t_off.records().is_empty() && t_off.counts().total() == 0);
    assert!(t_cnt.records().is_empty(), "counters mode must not store");
    assert_eq!(t_cnt.counts(), t_full.counts(), "tallies must agree");
    assert_eq!(
        t_full.records().len() as u64,
        t_full.counts().total(),
        "full mode stores every tallied record"
    );
    assert_eq!(t_full.counts().task_ends, r_full.counters.tasks_completed);
    for r in [&r_cnt, &r_full] {
        assert_eq!(r_off.exec_time, r.exec_time, "trace mode changed timing");
        assert_eq!(r_off.energy.energy_j, r.energy.energy_j);
        assert_eq!(r_off.counters.sim_events, r.counters.sim_events);
    }
}

/// Every configuration completes every benchmark and reports the identical
/// task count — no configuration may lose or duplicate work. The whole
/// matrix runs as one parallel suite.
#[test]
fn all_configs_complete_all_benchmarks() {
    for bench in Benchmark::all() {
        let w = workload(bench);
        let expect = w.build_graph().num_tasks() as u64;
        let specs = ScenarioSpec::paper_matrix(8, w);
        let reports = Suite::from_specs(specs)
            .jobs(3)
            .run_all(&SimExecutor::default());
        for r in reports {
            assert_eq!(
                r.counters.tasks_completed,
                expect,
                "{} on {} lost tasks",
                r.label,
                bench.name()
            );
            assert!(r.exec_time > SimDuration::ZERO);
            assert!(r.energy.energy_j > 0.0);
        }
    }
}

/// The whole pipeline is deterministic: identical spec + identical seed
/// produce bit-identical reports.
#[test]
fn end_to_end_determinism() {
    let w = workload(Benchmark::Bodytrack);
    for label in ["FIFO", "CATS+BL", "CATA", "CATA+RSU", "TurboMode"] {
        let a = run_preset(label, 8, w.clone());
        let b = run_preset(label, 8, w.clone());
        assert_eq!(a.exec_time, b.exec_time, "{} not deterministic", a.label);
        assert_eq!(a.energy.energy_j, b.energy.energy_j);
        assert_eq!(a.counters.reconfigs_applied, b.counters.reconfigs_applied);
        assert_eq!(a.lock_waits.count(), b.lock_waits.count());
    }
}

/// Replaying the trace of every dynamic configuration: the settled fast-core
/// count exceeds the power budget only in transient excursions bounded by
/// the DVFS transition latency (a superseded down-ramp overlapping an
/// up-ramp — gem5's DVFS model shows the same), and never by more than one
/// core. The *committed* budget invariant is asserted live inside the
/// executor (debug builds) on every reconfiguration.
#[test]
fn budget_excursions_are_transient_and_bounded() {
    let budget = 3;
    let w = workload(Benchmark::Fluidanimate);
    for label in ["CATA", "CATA+RSU", "TurboMode"] {
        let mut spec = ScenarioSpec::preset(label, budget, w.clone()).expect("paper preset");
        spec.machine.num_cores = 8;
        let (report, trace) = run_traced(spec);
        let mut fast = [false; 8];
        let mut over_time = SimDuration::ZERO;
        let mut prev = cata_sim::time::SimTime::ZERO;
        let mut over = false;
        for rec in trace.records() {
            if let TraceEvent::ReconfigApplied { core, level } = rec.event {
                if over {
                    over_time += rec.time.saturating_since(prev);
                }
                prev = rec.time;
                fast[core.index()] = level.frequency.as_mhz() == 2000;
                let n = fast.iter().filter(|&&f| f).count();
                assert!(
                    n <= budget + 1,
                    "{label}: {n} fast cores at {} — more than a one-core excursion",
                    rec.time
                );
                over = n > budget;
            }
        }
        // Rail-overlap excursions (a superseded down-ramp overlapping an
        // up-ramp) must stay a negligible share of the run.
        let share = over_time.ratio(report.exec_time);
        assert!(
            share < 0.02,
            "{label}: over-budget for {:.2}% of the run",
            share * 100.0
        );
    }
}

/// With a free software path (all latencies zero), software CATA and
/// CATA+RSU take identical decisions and produce identical schedules — the
/// two paths share one decision engine and differ only in cost.
#[test]
fn zero_cost_software_path_equals_rsu_modulo_op_cost() {
    let w = workload(Benchmark::Swaptions);
    let mut sw_spec = ScenarioSpec::preset("CATA", 8, w.clone()).expect("paper preset");
    sw_spec
        .params
        .get_or_insert_with(Default::default)
        .software_path = Some(SoftwarePathParams {
        rsm_section: SimDuration::ZERO,
        sysfs_write: SimDuration::ZERO,
        driver: SimDuration::ZERO,
        driver_waits_transition: false,
        kernel_post: SimDuration::ZERO,
    });
    let sw = run_spec(sw_spec);

    // The RSU charges a 32-cycle op cost; compare against software with zero
    // cost: the RSU run can be at most marginally slower per task.
    let hw = run_preset("CATA+RSU", 8, w);
    let ratio = hw.exec_time.as_ps() as f64 / sw.exec_time.as_ps() as f64;
    assert!(
        (0.999..1.01).contains(&ratio),
        "free software path should match RSU: ratio {ratio}"
    );
    assert_eq!(
        sw.counters.reconfigs_applied, hw.counters.reconfigs_applied,
        "shared engine must issue identical reconfigurations"
    );
}

/// Under CATS+SA, critical tasks land on fast cores far more often than
/// under FIFO — the scheduler is actually using the criticality signal.
#[test]
fn cats_places_critical_tasks_on_fast_cores() {
    let w = workload(Benchmark::Dedup);
    let graph = w.build_graph();
    let frac_fast = |label: &str| -> f64 {
        let spec = ScenarioSpec::preset(label, 8, w.clone()).expect("paper preset");
        let (_, trace) = run_traced(spec);
        let (mut crit_fast, mut crit_all) = (0u32, 0u32);
        for rec in trace.records() {
            if let TraceEvent::TaskStart { core, task, .. } = rec.event {
                // Under FIFO nothing is classified critical, so use the
                // type annotation instead of the runtime's classification.
                if graph.type_of(cata_tdg::TaskId(task)).criticality > 0 {
                    crit_all += 1;
                    if core.index() < 8 {
                        crit_fast += 1;
                    }
                }
            }
        }
        crit_fast as f64 / crit_all.max(1) as f64
    };
    let fifo = frac_fast("FIFO");
    let cats = frac_fast("CATS+SA");
    assert!(
        cats > fifo + 0.2,
        "CATS fast-core placement {cats:.2} not clearly above FIFO {fifo:.2}"
    );
}

/// The reported exec time respects fundamental bounds: at least the critical
/// path at the fast frequency; at most the serial execution at the slow
/// frequency plus runtime overheads.
#[test]
fn exec_time_respects_physical_bounds() {
    use cata_sim::time::Frequency;
    for bench in Benchmark::all() {
        let w = workload(bench);
        let graph = w.build_graph();
        let lower = graph.critical_path_at(Frequency::from_ghz(2));
        let serial = graph.total_work_at(Frequency::from_ghz(1));
        for label in ["FIFO", "CATA+RSU"] {
            let r = run_preset(label, 8, w.clone());
            assert!(
                r.exec_time >= lower,
                "{} on {}: {} below the critical-path bound {}",
                r.label,
                bench.name(),
                r.exec_time,
                lower
            );
            // Generous upper bound: serial time plus 100% overhead slack.
            assert!(
                r.exec_time.as_ps() < serial.as_ps() * 2,
                "{} on {} implausibly slow",
                r.label,
                bench.name()
            );
        }
    }
}

/// EDP is exactly energy × delay, and normalizations are self-consistent.
#[test]
fn energy_reports_are_consistent() {
    let r = run_preset("CATA", 8, workload(Benchmark::Ferret));
    let expect_edp = r.energy.energy_j * r.exec_time.as_secs_f64();
    assert!((r.energy.edp - expect_edp).abs() / expect_edp < 1e-12);
    assert!((r.speedup_over(&r) - 1.0).abs() < 1e-12);
    assert!((r.edp_normalized_to(&r).unwrap() - 1.0).abs() < 1e-12);
    // Average power must be between the all-idle floor and the all-busy
    // fast ceiling of a 32-core chip.
    assert!(r.energy.avg_power_w > 1.0);
    assert!(r.energy.avg_power_w < 32.0 * 3.0 + 20.0);
}

/// A generated task graph executes on the *native* runtime with dependences
/// enforced: every task runs exactly once and no task runs before its
/// predecessors.
#[test]
fn native_runtime_executes_a_generated_graph() {
    let graph = micro::fork_join(3, 16, 1000);
    let rt = NativeRuntime::builder(4).budget(2).build();
    let done: Arc<Vec<AtomicUsize>> = Arc::new(
        (0..graph.num_tasks())
            .map(|_| AtomicUsize::new(0))
            .collect(),
    );

    let mut handles = Vec::with_capacity(graph.num_tasks());
    for task in graph.tasks() {
        let deps: Vec<_> = task.preds().iter().map(|p| handles[p.index()]).collect();
        let done = Arc::clone(&done);
        let id = task.id.index();
        let pred_ids: Vec<usize> = task.preds().iter().map(|p| p.index()).collect();
        let critical = graph.type_of(task.id).criticality > 0;
        let h = rt.spawn(critical, &deps, move || {
            for &p in &pred_ids {
                assert_eq!(done[p].load(Ordering::SeqCst), 1, "dependence violated");
            }
            done[id].fetch_add(1, Ordering::SeqCst);
        });
        handles.push(h);
    }
    rt.wait_all();
    for (i, d) in done.iter().enumerate() {
        assert_eq!(
            d.load(Ordering::SeqCst),
            1,
            "task {i} ran wrong number of times"
        );
    }
    assert_eq!(rt.metrics().tasks_run as usize, graph.num_tasks());
}

/// The enum-based `RunConfig` compat surface resolves through the same
/// registries as the spec path: both produce bit-identical reports.
#[test]
fn run_config_and_spec_paths_agree() {
    let w = workload(Benchmark::Swaptions);
    let graph = w.build_graph();
    for cfg in RunConfig::paper_matrix(8) {
        let legacy = SimExecutor::new(cfg.clone()).run(&graph, &w.label()).0;
        let facade = run_spec(cfg.to_spec(w.clone()));
        assert_eq!(legacy.exec_time, facade.exec_time, "{} diverged", cfg.label);
        assert_eq!(legacy.energy.energy_j, facade.energy.energy_j);
        assert_eq!(
            legacy.counters.reconfigs_applied,
            facade.counters.reconfigs_applied
        );
    }
}

/// The software path's §V-C statistics are present for CATA and absent for
/// the lock-free RSU.
#[test]
fn reconfiguration_statistics_shape() {
    let w = workload(Benchmark::Blackscholes);
    let sw = run_preset("CATA", 8, w.clone());
    let hw = run_preset("CATA+RSU", 8, w);

    assert!(sw.counters.reconfigs_applied > 0);
    assert!(
        sw.lock_waits.count() > 0,
        "CATA must contend on the RSM lock"
    );
    assert!(sw.reconfig_time_share > 0.0);
    assert!(hw.lock_waits.is_empty(), "the RSU takes no locks");
    assert!(hw.counters.reconfigs_applied > 0);
    // The RSU's per-op overhead is cycles, not microseconds.
    assert!(hw.reconfig_overhead < sw.reconfig_overhead);
}

/// Static heterogeneous configurations never reconfigure; dynamic ones do.
#[test]
fn static_configs_never_reconfigure() {
    let w = workload(Benchmark::Swaptions);
    for label in ["FIFO", "CATS+BL", "CATS+SA"] {
        let r = run_preset(label, 8, w.clone());
        assert_eq!(
            r.counters.reconfigs_requested, 0,
            "{} reconfigured",
            r.label
        );
    }
}

/// Work-stealing counters: CATS fast cores fall back to the LPRQ when the
/// HPRQ is empty (the fork-join apps have no critical tasks at all).
#[test]
fn cats_steals_across_queues_on_unannotated_apps() {
    let r = run_preset("CATS+SA", 8, workload(Benchmark::Blackscholes));
    assert!(r.counters.cross_queue_steals > 0);
}

/// Halt accounting: TurboMode halts idle cores; CATA never does (only
/// blocked tasks halt, and blackscholes has none).
#[test]
fn halts_only_under_turbo_for_nonblocking_apps() {
    let w = workload(Benchmark::Blackscholes);
    let cata = run_preset("CATA+RSU", 8, w.clone());
    let turbo = run_preset("TurboMode", 8, w);
    assert_eq!(cata.counters.halts, 0, "CATA must not halt on blackscholes");
    assert!(turbo.counters.halts > 0, "TurboMode must halt idle cores");
}

/// Per-core utilization: the machine is meaningfully used and no core
/// reports an out-of-range utilization.
#[test]
fn utilization_sanity_across_benchmarks() {
    for bench in [Benchmark::Dedup, Benchmark::Swaptions] {
        let r = run_preset("FIFO", 16, workload(bench));
        assert_eq!(r.core_utilization.len(), 32);
        for &u in &r.core_utilization {
            assert!((0.0..=1.0).contains(&u));
        }
        assert!(
            r.avg_utilization() > 0.05,
            "{}: machine unused",
            bench.name()
        );
    }
}
