//! Service-mode (open-system) integration tests: golden determinism for
//! a fixed-seed Poisson run, record→replay bit-identity, arrival
//! conservation, and admission-policy behavior under overload.

use cata_core::exp::{default_registries, ScenarioSpec, WorkloadSpec};
use cata_core::service::{
    default_admission_registry, replay_tape, run_service, ArrivalSpec, ServiceSpec, TrafficTape,
};
use cata_core::RunReport;
use cata_sim::time::SimDuration;
use proptest::prelude::*;

const SEED: u64 = 42;

/// A small, fast-to-simulate base scenario: 8-core machine, 4 fast, a
/// 14-task fork-join instance template.
fn base(preset: &str) -> ScenarioSpec {
    let mut spec = ScenarioSpec::preset(
        preset,
        4,
        WorkloadSpec::ForkJoin {
            waves: 2,
            width: 6,
            cycles: 50_000,
        },
    )
    .expect("preset")
    .with_small_machine(8, 4);
    spec.seed = SEED;
    spec
}

fn serve(spec: &ServiceSpec) -> (RunReport, TrafficTape) {
    run_service(spec, default_registries(), default_admission_registry()).expect("service run")
}

/// Compact bit-exact digest of a service run, mirroring the closed-system
/// golden table: window, energy bits, counts, and raw-ps percentiles.
fn service_digest(r: &RunReport) -> String {
    let s = r.service.as_ref().expect("service report");
    format!(
        "t={} e={:016x} arr={} adm={} drop={} done={} p50={} p99={} p999={} q99={} s99={}",
        r.exec_time.as_ps(),
        r.energy.energy_j.to_bits(),
        s.arrivals,
        s.admitted,
        s.dropped,
        s.completed,
        s.p50().as_ps(),
        s.p99().as_ps(),
        s.p999().as_ps(),
        s.queue_wait.quantile(0.99).as_ps(),
        s.service_time.quantile(0.99).as_ps(),
    )
}

/// The pinned digest of one fixed-seed Poisson service run. Any engine,
/// sampler, histogram, or admission change that moves a bit here is a
/// behavioral change and must be called out. Regenerate with
/// `cargo test --test service_mode -- --nocapture print_service_digest`.
const GOLDEN_POISSON: &str = "t=49857058406 e=3fe8c2af8472b882 arr=203 adm=203 drop=0 done=203 \
     p50=130023424 p99=167772160 p999=243269632 q99=33554432 s99=167772160";

fn golden_spec() -> ServiceSpec {
    ServiceSpec::new(
        base("CATA"),
        ArrivalSpec::Poisson { rate_hz: 4000.0 },
        SimDuration::from_ms(50),
    )
}

#[test]
fn fixed_seed_poisson_run_matches_golden_digest() {
    let (report, _tape) = serve(&golden_spec());
    let s = report.service.as_ref().unwrap();
    assert!(s.arrivals > 100, "want a busy run, got {}", s.arrivals);
    assert_eq!(
        service_digest(&report),
        GOLDEN_POISSON,
        "service-mode behavior changed; if intentional, regenerate the golden digest"
    );
    // Re-running is bit-identical, including the serialized form.
    let (again, _) = serve(&golden_spec());
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&again).unwrap()
    );
}

#[test]
#[ignore = "prints the current digest for regenerating GOLDEN_POISSON"]
fn print_service_digest() {
    let (report, _) = serve(&golden_spec());
    println!("GOLDEN_POISSON: {}", service_digest(&report));
}

/// Record → replay: the tape a generated run records replays to a
/// bit-identical `ServiceReport`, through the JSONL file form and with
/// the digest pin engaged.
#[test]
fn recorded_tape_replays_bit_identically() {
    let spec = ServiceSpec::new(
        base("CATA+RSU"),
        ArrivalSpec::Poisson { rate_hz: 3000.0 },
        SimDuration::from_ms(20),
    );
    let (original, tape) = serve(&spec);

    // Through the file form: serialize, parse, verify, replay.
    let text = tape.to_jsonl();
    let loaded = TrafficTape::from_jsonl(&text).expect("tape parses");
    let digest = loaded.verify().expect("tape verifies");

    let mut replay_spec = spec.clone();
    replay_spec.arrival = ArrivalSpec::Tape { digest };
    let replayed = replay_tape(
        &replay_spec,
        &loaded,
        default_registries(),
        default_admission_registry(),
    )
    .expect("replay");

    assert_eq!(
        original.service, replayed.service,
        "replayed service metrics must be identical"
    );
    assert_eq!(original.exec_time, replayed.exec_time);
    assert_eq!(
        original.energy.energy_j.to_bits(),
        replayed.energy.energy_j.to_bits()
    );

    // A wrong pin is rejected loudly.
    let mut wrong = replay_spec;
    wrong.arrival = ArrivalSpec::Tape {
        digest: "0000000000000000".into(),
    };
    let err = replay_tape(
        &wrong,
        &loaded,
        default_registries(),
        default_admission_registry(),
    )
    .unwrap_err()
    .to_string();
    assert!(err.contains("pins traffic tape"), "{err}");
}

/// Overload behavior: a queue cap sheds load where admit-all absorbs it,
/// and criticality-aware shedding sits between (critical instances always
/// get in).
#[test]
fn admission_policies_shed_under_overload() {
    // Arrivals far faster than the machine drains them.
    let overload = |admission: &str| {
        let spec = ServiceSpec::new(
            base("FIFO"),
            ArrivalSpec::Fixed { rate_hz: 50_000.0 },
            SimDuration::from_ms(10),
        )
        .with_admission(admission)
        .with_queue_cap(8);
        let (report, _) = serve(&spec);
        report.service.unwrap()
    };

    let open = overload("admit-all");
    assert_eq!(open.dropped, 0);
    assert_eq!(open.admitted, open.arrivals);

    let capped = overload("queue-cap");
    assert!(capped.dropped > 0, "cap 8 under 50 kHz must shed");
    assert_eq!(capped.admitted + capped.dropped, capped.arrivals);
    assert!(
        capped.p99() < open.p99(),
        "shedding must shorten the tail: capped {} vs open {}",
        capped.p99().as_ps(),
        open.p99().as_ps()
    );

    // The fork-join template carries critical tasks under CATA presets
    // but the FIFO preset's static estimator still annotates them; a
    // critical instance bypasses the shed gate entirely.
    let shed = overload("shed-noncritical");
    assert_eq!(shed.admitted + shed.dropped, shed.arrivals);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation: for any rate, window, and cap, every arrival is
    /// accounted for — admitted + dropped == arrivals, and after the
    /// drain admitted == completed with nothing left in flight. The
    /// percentile table is monotone and finite.
    #[test]
    fn arrivals_are_conserved(
        rate in 500.0f64..20_000.0,
        dur_us in 500u64..5_000,
        cap in 1usize..32,
        poisson in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let mut b = base("CATA");
        b.seed = seed;
        let arrival = if poisson {
            ArrivalSpec::Poisson { rate_hz: rate }
        } else {
            ArrivalSpec::Fixed { rate_hz: rate }
        };
        let spec = ServiceSpec::new(b, arrival, SimDuration::from_us(dur_us))
            .with_admission("queue-cap")
            .with_queue_cap(cap);
        let (report, tape) = serve(&spec);
        let s = report.service.unwrap();

        prop_assert_eq!(s.arrivals, tape.records.len() as u64);
        prop_assert_eq!(s.admitted + s.dropped, s.arrivals);
        prop_assert_eq!(s.in_flight, 0);
        prop_assert_eq!(s.completed, s.admitted);
        prop_assert_eq!(s.latency.count(), s.completed);

        prop_assert!(s.p50() <= s.p99() && s.p99() <= s.p999());
        prop_assert!(s.p999() <= s.latency.max());
        prop_assert!(s.graphs_per_sec.is_finite() && s.graphs_per_sec >= 0.0);
        // Queue + service decompose the response time at the instance
        // level; at the histogram level the maxima still bound it.
        prop_assert!(s.latency.max() <= s.queue_wait.max() + s.service_time.max());
    }
}
