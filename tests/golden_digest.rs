//! Golden determinism digests for the six paper presets.
//!
//! The engine promises bit-identical `RunReport`s for identical specs, and
//! PR 2's hot-path refactor (persistent idle-core index, bucket-array
//! HPRQ, borrowed profiles, scratch reuse) promises to preserve every
//! scheduling decision. These digests — recorded from the pre-refactor
//! engine on fixed seeded workloads — pin that contract: any change to
//! makespan, energy, or a counter on any preset is a behavioural change,
//! not an optimization, and must be called out loudly.
//!
//! To regenerate after an *intentional* semantic change:
//! `cargo test --test golden_digest -- --nocapture print_current_digests`
//! and paste the printed table over `GOLDEN`.

use cata_core::exp::{ScenarioSpec, WorkloadSpec};
use cata_core::SimExecutor;
use cata_workloads::{Benchmark, Scale};

const SEED: u64 = 42;

/// Two fixed workloads: the Dedup pipeline (deep, criticality-annotated)
/// and Fluidanimate (the max-fan-in TDG that stresses CATS+BL walks).
fn workloads() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        (
            "dedup-tiny",
            WorkloadSpec::parsec(Benchmark::Dedup, Scale::Tiny, SEED),
        ),
        (
            "fluid-tiny",
            WorkloadSpec::parsec(Benchmark::Fluidanimate, Scale::Tiny, SEED),
        ),
    ]
}

const PRESETS: [&str; 6] = [
    "FIFO",
    "CATS+BL",
    "CATS+SA",
    "CATA",
    "CATA+RSU",
    "TurboMode",
];

/// A compact, bit-exact digest of one run: makespan (ps), energy (f64
/// bits), and the counters that witness every scheduling decision.
fn digest(preset: &str, workload: &WorkloadSpec) -> String {
    digest_with_queue(preset, workload, None)
}

/// Digest of a run with an explicitly pinned event-queue backend
/// (`None` leaves the spec's `event_queue` omitted — the engine default).
fn digest_with_queue(preset: &str, workload: &WorkloadSpec, queue: Option<&str>) -> String {
    let mut spec = ScenarioSpec::preset(preset, 16, workload.clone()).expect("preset");
    if let Some(key) = queue {
        spec = spec.with_event_queue(key);
    }
    let (r, _) = SimExecutor::default()
        .run_spec(&spec, cata_core::exp::default_registries())
        .expect("run");
    let c = &r.counters;
    format!(
        "t={} e={:016x} edp={:016x} done={} req={} app={} noop={} denied={} swaps={} steals={} halts={} ovh={}",
        r.exec_time.as_ps(),
        r.energy.energy_j.to_bits(),
        r.energy.edp.to_bits(),
        c.tasks_completed,
        c.reconfigs_requested,
        c.reconfigs_applied,
        c.reconfigs_noop,
        c.accel_denied,
        c.accel_swaps,
        c.cross_queue_steals,
        c.halts,
        r.reconfig_overhead.as_ps(),
    )
}

/// The recorded pre-refactor digests, `(workload, preset) -> digest`.
const GOLDEN: &[(&str, &str, &str)] = &[
    ("dedup-tiny", "FIFO", "t=10324572707 e=3fdc9a2ef0b74556 edp=3f72e64c6c3f0f3c done=516 req=0 app=0 noop=0 denied=0 swaps=0 steals=0 halts=157 ovh=0"),
    ("dedup-tiny", "CATS+BL", "t=8943981717 e=3fda0e239c749d63 edp=3f6dd42c4f32a475 done=516 req=0 app=0 noop=0 denied=0 swaps=0 steals=296 halts=157 ovh=0"),
    ("dedup-tiny", "CATS+SA", "t=8605258874 e=3fd977f0222951f8 edp=3f6c0d895d2c81d0 done=516 req=0 app=0 noop=0 denied=0 swaps=0 steals=298 halts=157 ovh=0"),
    ("dedup-tiny", "CATA", "t=8717360226 e=3fd8107e4d2d5dfa edp=3f6ada03c34b8de6 done=516 req=107 app=107 noop=0 denied=0 swaps=0 steals=492 halts=157 ovh=2193302300"),
    ("dedup-tiny", "CATA+RSU", "t=8645288086 e=3fd7e23abaf68118 edp=3f6a6dfcb6c90e4f done=516 req=107 app=107 noop=0 denied=0 swaps=0 steals=492 halts=157 ovh=23744000"),
    ("dedup-tiny", "TurboMode", "t=9911825754 e=3fd898d43e31173e edp=3f6f34df8ffb687f done=516 req=677 app=677 noop=0 denied=0 swaps=0 steals=0 halts=430 ovh=0"),
    ("fluid-tiny", "FIFO", "t=3370990850 e=3fc189ab21b86612 edp=3f3e44ee675fa8ba done=200 req=0 app=0 noop=0 denied=0 swaps=0 steals=0 halts=0 ovh=0"),
    ("fluid-tiny", "CATS+BL", "t=2814048457 e=3fc05d1611a2922e edp=3f37939af4145832 done=200 req=0 app=0 noop=0 denied=0 swaps=0 steals=143 halts=0 ovh=0"),
    ("fluid-tiny", "CATS+SA", "t=2808798457 e=3fc0580bde0f5f2d edp=3f378118e1888cdd done=200 req=0 app=0 noop=0 denied=0 swaps=0 steals=106 halts=0 ovh=0"),
    ("fluid-tiny", "CATA", "t=2831224255 e=3fc01f757be2e240 edp=3f375f1c2c08b484 done=200 req=391 app=391 noop=0 denied=32 swaps=26 steals=100 halts=0 ovh=4945571215"),
    ("fluid-tiny", "CATA+RSU", "t=2668613612 e=3fbe89d95736954a edp=3f34dce1a7b389da done=200 req=393 app=393 noop=0 denied=23 swaps=34 steals=100 halts=0 ovh=11984000"),
    ("fluid-tiny", "TurboMode", "t=2764280898 e=3fbce2e61da5fc24 edp=3f34710b3d311145 done=200 req=381 app=381 noop=0 denied=0 swaps=0 steals=0 halts=206 ovh=0"),
];

#[test]
fn print_current_digests() {
    // Not an assertion: prints the digest table for regeneration (see the
    // module docs). Kept as a test so it builds against the same engine.
    for (wname, w) in workloads() {
        for preset in PRESETS {
            println!(
                "    (\"{wname}\", \"{preset}\", \"{}\"),",
                digest(preset, &w)
            );
        }
    }
}

/// The event-queue backend is a pure speed knob: all six presets run
/// under the explicit calendar-wheel backend *and* the explicit legacy
/// heap backend, and both must reproduce the recorded golden digests
/// byte for byte. (Pop order is a total order over `(time, seq)`, so a
/// correct backend cannot change a single scheduling decision.)
#[test]
fn six_presets_digest_identically_under_both_event_queues() {
    let all = workloads();
    for &(wname, preset, want) in GOLDEN {
        let (_, w) = all
            .iter()
            .find(|(n, _)| *n == wname)
            .expect("known workload");
        for queue in ["calendar-wheel", "heap"] {
            let got = digest_with_queue(preset, w, Some(queue));
            assert_eq!(
                got, want,
                "{preset} on {wname} diverged from the golden digest under the {queue} backend"
            );
        }
    }
}

#[test]
fn six_presets_match_recorded_digests() {
    assert_eq!(GOLDEN.len(), 12, "6 presets x 2 workloads");
    let all = workloads();
    for &(wname, preset, want) in GOLDEN {
        let (_, w) = all
            .iter()
            .find(|(n, _)| *n == wname)
            .expect("known workload");
        let got = digest(preset, w);
        assert_eq!(
            got, want,
            "{preset} on {wname} diverged from the golden digest"
        );
    }
}
