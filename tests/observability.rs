//! Integration tests of the operator-console stack: a real sharded sweep
//! emitting heartbeat sidecars, tailed and merged into one dashboard
//! state; the headless renderer over that state; and the replay contract
//! — a stored cell's embedded spec re-runs bit-identically on the sim
//! backend. The acceptance criterion is that telemetry is *purely
//! observational*: reports and stores are byte-identical with and
//! without it.

use cata_core::exp::{
    spec_digest, JsonlTail, ProgressWriter, ResultsStore, ScenarioSpec, Suite, WorkloadSpec,
};
use cata_core::{Executor, RunReport, Scenario, SimExecutor};
use cata_obs::{render, required_height, CellState, DashState};
use std::path::PathBuf;

/// The six-preset grid on a small deterministic workload.
fn grid() -> Vec<ScenarioSpec> {
    ScenarioSpec::paper_matrix(
        2,
        WorkloadSpec::ForkJoin {
            waves: 3,
            width: 8,
            cycles: 400_000,
        },
    )
    .into_iter()
    .map(|s| s.with_small_machine(4, 2))
    .collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cata-obs-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn bits(r: &RunReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

/// A two-shard sweep with heartbeats, tailed into one `DashState`: the
/// merged view reaches 100% with every cell done, the renderer shows
/// every cell key, and the reports are bit-identical to an unobserved
/// run — telemetry changes nothing.
#[test]
fn sharded_sweep_with_heartbeats_merges_into_a_complete_dashboard() {
    let exec = SimExecutor::default();
    let reference = Suite::from_specs(grid()).jobs(2).run_all(&exec);

    let mut store_paths = Vec::new();
    let mut progress_paths = Vec::new();
    for k in 1..=2usize {
        let store_path = tmp(&format!("shard-{k}.jsonl"));
        let progress_path = tmp(&format!("shard-{k}.progress.jsonl"));
        let suite = Suite::from_specs(grid()).jobs(2).shard(k, 2).unwrap();
        let store = ResultsStore::open(&store_path).unwrap();
        let writer = ProgressWriter::open(&progress_path, k as u64).unwrap();
        let outcome = suite.run_with_store_observed(&exec, &store, Some(&writer));
        assert_eq!(outcome.executed, 3, "shard {k}/2 runs half the grid");
        store_paths.push(store_path);
        progress_paths.push(progress_path);
    }

    // Tail everything into one state, interleaving the two shards'
    // streams the way a live watch would see them.
    let mut state = DashState::new();
    let mut tails: Vec<JsonlTail> = progress_paths.iter().map(JsonlTail::new).collect();
    loop {
        let mut got = false;
        for t in &mut tails {
            for line in t.poll().unwrap() {
                state.ingest_progress_line(&line);
                got = true;
            }
        }
        if !got {
            break;
        }
    }
    for p in &store_paths {
        let mut t = JsonlTail::new(p);
        for line in t.poll().unwrap() {
            state.ingest_store_line(&line);
        }
    }

    assert_eq!(state.parse_errors, 0);
    assert_eq!(state.grid_total(), 6);
    assert_eq!(state.grid_done(), 6);
    assert!(state.complete(), "heatmap reaches 100%");
    assert_eq!(state.cells.len(), 6);
    for cell in state.cells.values() {
        assert_eq!(cell.state, CellState::Done);
        assert!(cell.has_spec, "store records embed the replayable spec");
        assert!(cell.host.is_some());
        let (s, f) = (
            cell.started_unix_ms.unwrap(),
            cell.finished_unix_ms.unwrap(),
        );
        assert!(s <= f, "start stamp precedes finish stamp");
        assert!(cell.report.is_some());
    }

    // Headless frame at auto height: every cell key appears, no NaN/inf.
    let frame = render(&state, 120, required_height(&state, 120));
    let text = frame.to_text();
    for cell in state.cells.values() {
        assert!(text.contains(&cell.key), "missing {} in:\n{text}", cell.key);
    }
    assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    assert!(text.contains("6/6"), "{text}");

    // Telemetry is observational: the observed run's reports are
    // bit-identical to the unobserved reference.
    let merged = ResultsStore::merge_files(&store_paths).unwrap();
    assert_eq!(merged.records.len(), reference.len());
    for (rec, want) in merged.records.iter().zip(&reference) {
        assert_eq!(bits(&rec.report), bits(want));
    }
}

/// The replay contract: a stored cell's embedded spec digests to the
/// record's pinned digest, and re-running it on the sim backend
/// reproduces the stored report bit for bit.
#[test]
fn stored_cells_replay_bit_identically_from_their_embedded_spec() {
    let exec = SimExecutor::default();
    let store_path = tmp("replay.jsonl");
    let store = ResultsStore::open(&store_path).unwrap();
    let suite = Suite::from_specs(grid()).jobs(2);
    suite.run_with_store_observed(&exec, &store, None);

    let (records, truncated) = ResultsStore::load(&store_path).unwrap();
    assert!(!truncated);
    assert_eq!(records.len(), 6);
    for rec in &records {
        let spec = rec.spec.as_ref().expect("observed stores embed specs");
        assert_eq!(spec_digest(spec), rec.spec_digest);
        let fresh = exec.execute(&Scenario::from_spec(spec.clone())).unwrap();
        assert_eq!(
            bits(&fresh),
            bits(&rec.report),
            "cell {} diverged on replay",
            rec.cell
        );
    }
}

/// Tailing a progress stream *while it grows* (poll between emits) sees
/// the same final state as tailing it after the fact — the incremental
/// path drops nothing and double-counts nothing.
#[test]
fn incremental_tailing_matches_post_hoc_tailing() {
    let exec = SimExecutor::default();
    let store_path = tmp("incr.jsonl");
    let progress_path = tmp("incr.progress.jsonl");

    // Run cell by cell, polling the tail between suite invocations to
    // simulate a live watch racing the writer.
    let mut live = DashState::new();
    let mut tail = JsonlTail::new(&progress_path);
    let writer = ProgressWriter::open(&progress_path, 0).unwrap();
    let store = ResultsStore::open(&store_path).unwrap();
    let suite = Suite::from_specs(grid()).jobs(1);
    suite.run_with_store_observed(&exec, &store, Some(&writer));
    for line in tail.poll().unwrap() {
        live.ingest_progress_line(&line);
    }

    let mut post = DashState::new();
    let mut t2 = JsonlTail::new(&progress_path);
    for line in t2.poll().unwrap() {
        post.ingest_progress_line(&line);
    }

    assert_eq!(live.grid_done(), post.grid_done());
    assert_eq!(live.cells.len(), post.cells.len());
    for (i, c) in &live.cells {
        assert_eq!(c.state, post.cells[i].state, "cell {i}");
        assert_eq!(c.key, post.cells[i].key);
    }
    let (w, h) = (120, required_height(&live, 120));
    assert_eq!(
        render(&live, w, h).to_text(),
        render(&post, w, h).to_text(),
        "same state ⇒ same frame"
    );
}
