//! Integration tests of the results store + sharded suite subsystem: the
//! acceptance contract is that sharding a grid across processes/files and
//! resuming interrupted sweeps are *invisible* — the merged reports are
//! bit-identical to one uninterrupted in-process `Suite::run`.

use cata_core::exp::{spec_digest, ResultsStore, ScenarioSpec, ShardOrder, Suite, WorkloadSpec};
use cata_core::{RunReport, SimExecutor};
use proptest::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;

/// The six-preset grid on a small deterministic workload.
fn grid() -> Vec<ScenarioSpec> {
    ScenarioSpec::paper_matrix(
        2,
        WorkloadSpec::ForkJoin {
            waves: 3,
            width: 8,
            cycles: 400_000,
        },
    )
    .into_iter()
    .map(|s| s.with_small_machine(4, 2))
    .collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cata-store-suite-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn bits(r: &RunReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

/// Two disjoint shards into two stores, merged, against one unsharded
/// in-process run: same cells, same order, bit-identical reports — the
/// acceptance criterion of the sharded-suite subsystem.
#[test]
fn sharded_stores_merge_bit_identical_to_single_process_run() {
    let exec = SimExecutor::default();
    let reference = Suite::from_specs(grid()).jobs(2).run_all(&exec);

    let a_path = tmp("shard-a.jsonl");
    let b_path = tmp("shard-b.jsonl");
    for (k, path) in [(1, &a_path), (2, &b_path)] {
        let suite = Suite::from_specs(grid()).jobs(2).shard(k, 2).unwrap();
        let store = ResultsStore::open(path).unwrap();
        let outcome = suite.run_with_store(&exec, &store);
        assert_eq!(outcome.executed, 3, "shard {k}/2 runs half the grid");
        assert_eq!(outcome.resumed, 0);
    }

    let merged = ResultsStore::merge_files(&[&a_path, &b_path]).unwrap();
    assert_eq!(merged.records.len(), reference.len());
    assert_eq!(merged.truncated_shards, 0);
    for (rec, want) in merged.records.iter().zip(&reference) {
        assert_eq!(rec.report.label, want.label);
        assert_eq!(
            bits(&rec.report),
            bits(want),
            "{}: merged shard cell diverged from the in-process run",
            want.label
        );
    }
    // Record identity carries the grid index and the spec digest, and
    // both shards stamped the same full-grid provenance tag.
    assert_eq!(merged.distinct_grids, 1, "shards of one grid share a tag");
    let specs = grid();
    for (i, rec) in merged.records.iter().enumerate() {
        assert_eq!(rec.index, i as u64);
        assert_eq!(rec.spec_digest, spec_digest(&specs[i]));
        assert_eq!(rec.seed, specs[i].seed);
        assert!(rec.wall_s >= 0.0);
    }
}

/// Kill-and-resume: run half the suite into a store, tear the writer
/// mid-line (half a record, no newline — what a killed process leaves
/// behind), then resume with the full grid. The resume must execute
/// exactly the missing cells, and the final results must be bit-identical
/// to an uninterrupted single-process run.
#[test]
fn resume_after_torn_write_completes_exactly_the_missing_cells() {
    let exec = SimExecutor::default();
    let reference = Suite::from_specs(grid()).jobs(1).run_all(&exec);
    let path = tmp("resume.jsonl");

    // First half: shard 1/2 (global cells 0, 2, 4) into the store.
    {
        let suite = Suite::from_specs(grid()).shard(1, 2).unwrap();
        let store = ResultsStore::open(&path).unwrap();
        let outcome = suite.run_with_store(&exec, &store);
        assert_eq!(outcome.executed, 3);
    }
    // The writer dies mid-append: a torn, newline-less record fragment.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(br#"{"schema":"cata-results/v1","index":5,"cell":"Turbo"#)
            .unwrap();
    }

    // Resume with the *full* grid: the torn tail is discarded, the three
    // stored cells load, and only the three missing cells execute.
    let store = ResultsStore::open(&path).unwrap();
    assert!(store.recovered_torn_tail());
    assert_eq!(store.records().len(), 3);
    let outcome = Suite::from_specs(grid())
        .jobs(2)
        .run_with_store(&exec, &store);
    assert_eq!(outcome.resumed, 3, "stored cells must not re-run");
    assert_eq!(outcome.executed, 3, "only the missing cells execute");
    assert_eq!(outcome.results.len(), reference.len());
    for (got, want) in outcome.results.iter().zip(&reference) {
        let got = got.as_ref().expect("cell runs");
        assert_eq!(
            bits(got),
            bits(want),
            "{}: resumed suite diverged from the uninterrupted run",
            want.label
        );
    }

    // A third invocation finds everything stored: nothing executes.
    let store = ResultsStore::open(&path).unwrap();
    assert!(!store.recovered_torn_tail(), "tail was truncated away");
    let outcome = Suite::from_specs(grid())
        .jobs(2)
        .run_with_store(&exec, &store);
    assert_eq!(outcome.resumed, 6);
    assert_eq!(outcome.executed, 0);
}

/// Editing a spec invalidates only that cell: resume keys on
/// `(index, spec_digest)`, so a changed cell re-runs while the rest load.
#[test]
fn changed_spec_reruns_only_that_cell() {
    let exec = SimExecutor::default();
    let path = tmp("respec.jsonl");
    {
        let store = ResultsStore::open(&path).unwrap();
        let outcome = Suite::from_specs(grid()).run_with_store(&exec, &store);
        assert_eq!(outcome.executed, 6);
    }
    let mut specs = grid();
    specs[3].seed ^= 0xFFFF;
    let store = ResultsStore::open(&path).unwrap();
    let outcome = Suite::from_specs(specs.clone()).run_with_store(&exec, &store);
    assert_eq!(outcome.resumed, 5);
    assert_eq!(outcome.executed, 1, "only the reseeded cell re-runs");

    // The store now holds a stale and a fresh record at index 3; merging
    // must still work, with the chronologically later record winning.
    let merged = ResultsStore::merge_files(&[&path]).unwrap();
    assert_eq!(merged.records.len(), 6);
    assert_eq!(merged.duplicates, 1, "the stale record is superseded");
    assert_eq!(merged.records[3].spec_digest, spec_digest(&specs[3]));
    assert_eq!(merged.records[3].seed, specs[3].seed);
}

/// Pushing into a sharded suite must stay inside the shard's residue
/// class — otherwise two shards could claim the same grid index.
#[test]
fn push_after_shard_stays_disjoint() {
    use cata_core::exp::Scenario;
    let extra = || {
        Scenario::from_spec(ScenarioSpec::new(
            "extra",
            WorkloadSpec::Chain {
                n: 2,
                cycles: 1_000,
            },
        ))
    };
    let mut a = Suite::from_specs(grid()).shard(1, 2).unwrap();
    let mut b = Suite::from_specs(grid()).shard(2, 2).unwrap();
    a.push(extra());
    b.push(extra());
    assert_eq!(a.cell_indices(), &[0, 2, 4, 6]);
    assert_eq!(b.cell_indices(), &[1, 3, 5, 7]);

    // Even from empty sharded suites, indices start in the residue class.
    let mut ea = Suite::from_specs(Vec::new()).shard(1, 3).unwrap();
    let mut eb = Suite::from_specs(Vec::new()).shard(2, 3).unwrap();
    ea.push(extra());
    eb.push(extra());
    assert_eq!(ea.cell_indices(), &[0]);
    assert_eq!(eb.cell_indices(), &[1]);
}

/// Suite workers stream records concurrently through one append handle;
/// every line must stay parseable (the atomic-append contract).
#[test]
fn parallel_store_writes_never_tear_lines() {
    let exec = SimExecutor::default();
    let path = tmp("parallel.jsonl");
    let store = ResultsStore::open(&path).unwrap();
    let outcome = Suite::from_specs(grid())
        .jobs(6)
        .run_with_store(&exec, &store);
    assert_eq!(outcome.executed, 6);
    let (records, truncated) = ResultsStore::load(&path).unwrap();
    assert!(!truncated);
    assert_eq!(records.len(), 6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `K/N` shard partitioner is a true partition: shards are
    /// pairwise disjoint and their union covers the grid exactly, for any
    /// grid size and shard count.
    #[test]
    fn shards_partition_the_grid(cells in 1usize..40, shards in 1usize..9) {
        let specs: Vec<ScenarioSpec> = (0..cells)
            .map(|i| {
                ScenarioSpec::new(
                    format!("cell-{i}"),
                    WorkloadSpec::Chain { n: 2, cycles: 1_000 },
                )
            })
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        for k in 1..=shards {
            let slice = Suite::from_specs(specs.clone()).shard(k, shards).unwrap();
            for &i in slice.cell_indices() {
                prop_assert!(seen.insert(i), "cell {i} appears in two shards");
            }
        }
        prop_assert_eq!(seen.len(), cells, "shards must cover the grid");
        prop_assert_eq!(seen.iter().copied().collect::<Vec<u64>>(),
                        (0..cells as u64).collect::<Vec<u64>>());
    }

    /// The cost-aware snake partitioner is also a true partition — for any
    /// grid size, shard count, and cost skew — and never puts the two most
    /// expensive cells on one shard (when there are at least two shards).
    #[test]
    fn snake_shards_partition_the_grid(
        costs in prop::collection::vec(1u64..1_000_000, 1..40),
        shards in 1usize..9,
    ) {
        let specs: Vec<ScenarioSpec> = costs
            .iter()
            .map(|&c| {
                ScenarioSpec::new(
                    format!("cell-{c}"),
                    WorkloadSpec::Chain { n: 1, cycles: c },
                )
            })
            .collect();
        let cells = specs.len();
        let mut seen = std::collections::BTreeSet::new();
        let mut heavy_shard = None;
        let heaviest_two: Vec<u64> = {
            let mut ranked: Vec<(u64, u64)> = specs
                .iter()
                .enumerate()
                .map(|(i, s)| (s.workload.cost_estimate(), i as u64))
                .collect();
            // Highest cost first, grid index as the deterministic tie-break
            // (mirrors the partitioner's own ranking).
            ranked.sort_by_key(|&(c, i)| (std::cmp::Reverse(c), i));
            ranked.iter().take(2).map(|&(_, i)| i).collect()
        };
        for k in 1..=shards {
            let slice = Suite::from_specs(specs.clone())
                .shard_ordered(k, shards, ShardOrder::Snake)
                .unwrap();
            for &i in slice.cell_indices() {
                prop_assert!(seen.insert(i), "cell {i} appears in two shards");
            }
            if slice.cell_indices().contains(&heaviest_two[0]) {
                heavy_shard = Some(k);
            }
        }
        prop_assert_eq!(seen.len(), cells, "snake shards must cover the grid");
        if shards > 1 && cells > 1 {
            let heavy = heavy_shard.expect("some shard holds the heaviest cell");
            let second = Suite::from_specs(specs.clone())
                .shard_ordered(heavy, shards, ShardOrder::Snake)
                .unwrap();
            prop_assert!(
                !second.cell_indices().contains(&heaviest_two[1]),
                "shard {heavy} holds both of the two heaviest cells"
            );
        }
    }
}
