//! Property-based tests (proptest) over the core invariants, driven through
//! randomly generated task graphs and event sequences.

use cata_core::{RunConfig, SimExecutor};
use cata_rsu::engine::ReconfigEngine;
use cata_sim::progress::{ExecProfile, RunningTask};
use cata_sim::time::{Frequency, SimDuration, SimTime};
use cata_sim::trace::TraceEvent;
use cata_tdg::bottom_level::BottomLevels;
use cata_tdg::deps::{AccessMode, DepTracker, RegionId};
use cata_tdg::{TaskGraph, TaskId};
use cata_workloads::micro;
use proptest::prelude::*;

/// Strategy: a random DAG description (size, edge probability, seed).
fn dag_params() -> impl Strategy<Value = (usize, f64, u64)> {
    (2usize..40, 0.02f64..0.4, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work conservation: every scheduler runs every task of a random DAG
    /// exactly once, whatever the graph shape.
    #[test]
    fn schedulers_conserve_tasks((n, p, seed) in dag_params()) {
        let graph = micro::random_dag(n, p, 10_000, 2_000_000, seed);
        for cfg in RunConfig::paper_matrix(2) {
            let label = cfg.label.clone();
            let r = SimExecutor::new(cfg.with_small_machine(4, 2)).run(&graph, "prop").0;
            prop_assert_eq!(r.counters.tasks_completed, n as u64, "{} lost tasks", label);
        }
    }

    /// Budget safety: replaying the trace of a CATA+RSU run over a random
    /// DAG, settled fast cores never exceed the budget by more than a
    /// transition-latency-bounded one-core excursion (the committed-target
    /// invariant is debug-asserted inside the executor on every event).
    #[test]
    fn budget_invariant_on_random_dags((n, p, seed) in dag_params()) {
        let graph = micro::random_dag(n, p, 10_000, 2_000_000, seed);
        let cfg = RunConfig::cata_rsu(2).with_small_machine(4, 2).with_trace();
        let (_, trace) = SimExecutor::new(cfg).run(&graph, "prop");
        let mut fast = [false; 4];
        for rec in trace.records() {
            if let TraceEvent::ReconfigApplied { core, level } = rec.event {
                fast[core.index()] = level.frequency.as_mhz() == 2000;
                prop_assert!(fast.iter().filter(|&&f| f).count() <= 3);
            }
        }
    }

    /// Execution time lower bound: no schedule beats the critical path at
    /// the fast frequency.
    #[test]
    fn exec_time_lower_bound((n, p, seed) in dag_params()) {
        let graph = micro::random_dag(n, p, 10_000, 2_000_000, seed);
        let bound = graph.critical_path_at(Frequency::from_ghz(2));
        for cfg in [RunConfig::fifo(4), RunConfig::cata_rsu(4)] {
            let r = SimExecutor::new(cfg.with_small_machine(4, 4)).run(&graph, "prop").0;
            prop_assert!(r.exec_time >= bound);
        }
    }

    /// Determinism over arbitrary graphs: two identical runs agree exactly.
    #[test]
    fn determinism_on_random_dags((n, p, seed) in dag_params()) {
        let graph = micro::random_dag(n, p, 10_000, 500_000, seed);
        let a = SimExecutor::new(RunConfig::cata(2).with_small_machine(4, 2)).run(&graph, "x").0;
        let b = SimExecutor::new(RunConfig::cata(2).with_small_machine(4, 2)).run(&graph, "x").0;
        prop_assert_eq!(a.exec_time, b.exec_time);
        prop_assert_eq!(a.energy.energy_j, b.energy.energy_j);
    }

    /// Incremental bottom levels equal the batch recomputation on arbitrary
    /// DAGs (uncapped walk).
    #[test]
    fn incremental_bl_equals_batch((n, p, seed) in dag_params()) {
        let graph = micro::random_dag(n, p, 1, 2, seed);
        let mut bl = BottomLevels::exact();
        for t in graph.task_ids() {
            bl.on_submit(&graph, t);
        }
        let batch = BottomLevels::recompute_batch(&graph);
        for t in graph.task_ids() {
            prop_assert_eq!(bl.bl(t), batch[t.index()]);
        }
    }

    /// A capped walk never reports a *higher* BL than the exact one, and
    /// the new task's own BL is always exact (it is a leaf at submission).
    #[test]
    fn capped_bl_underestimates((n, p, seed) in dag_params(), cap in 2u64..64) {
        let graph = micro::random_dag(n, p, 1, 2, seed);
        let mut capped = BottomLevels::with_visit_cap(cap);
        let mut exact = BottomLevels::exact();
        for t in graph.task_ids() {
            capped.on_submit(&graph, t);
            exact.on_submit(&graph, t);
        }
        for t in graph.task_ids() {
            prop_assert!(capped.bl(t) <= exact.bl(t));
        }
        prop_assert!(capped.total_visits() <= exact.total_visits());
    }

    /// The progress model terminates and never regresses under arbitrary
    /// frequency-change sequences.
    #[test]
    fn progress_model_terminates_under_freq_churn(
        cycles in 1u64..10_000_000,
        mem in 0u64..1_000_000_000,
        switch_points in prop::collection::vec(1u64..500_000, 0..24),
    ) {
        let profile = ExecProfile::new(cycles, mem);
        let mut rt = RunningTask::start(&profile, SimTime::ZERO, Frequency::from_ghz(1));
        let mut now = SimTime::ZERO;
        let mut fast = false;
        let mut last_progress = 0.0f64;
        let mut points = switch_points.clone();
        points.sort_unstable();
        for (i, ns) in points.iter().enumerate() {
            now = SimTime::from_ns(*ns + i as u64);
            rt.advance_to(now);
            prop_assert!(rt.progress() >= last_progress - 1e-12, "progress regressed");
            last_progress = rt.progress();
            fast = !fast;
            rt.set_frequency(now, if fast { Frequency::from_ghz(2) } else { Frequency::from_ghz(1) });
            if rt.is_finished() {
                break;
            }
        }
        // Drive to completion: bounded number of milestones.
        let mut steps = 0;
        while let Some(m) = rt.next_milestone() {
            prop_assert!(m.time() >= now, "milestone in the past");
            now = m.time();
            rt.advance_to(now);
            steps += 1;
            prop_assert!(steps < 64, "milestone loop failed to terminate");
        }
        prop_assert!(rt.is_finished());
        prop_assert!((rt.progress() - 1.0).abs() < 1e-9);
    }

    /// Duration arithmetic: cycles→duration→cycles round-trips within one
    /// cycle for arbitrary frequencies.
    #[test]
    fn frequency_round_trip(cycles in 0u64..u64::MAX / 2_000_000, mhz in 1u32..8000) {
        let f = Frequency::from_mhz(mhz);
        let d = f.cycles_to_duration(cycles);
        let back = f.duration_to_cycles(d);
        prop_assert!(back >= cycles, "work under-charged: {back} < {cycles}");
        prop_assert!(back - cycles <= 1, "round trip drifted: {back} vs {cycles}");
    }

    /// The reconfiguration engine keeps its budget invariant under arbitrary
    /// start/end/idle event streams.
    #[test]
    fn engine_invariants_under_random_events(
        events in prop::collection::vec((0usize..8, 0u8..3, any::<bool>()), 0..400),
        budget in 0usize..=8,
    ) {
        let mut e = ReconfigEngine::new(8, budget);
        let mut running = [false; 8];
        for (core, op, critical) in events {
            match op {
                0 => {
                    if !running[core] {
                        e.on_task_start(core, critical);
                        running[core] = true;
                    }
                }
                1 => {
                    if running[core] {
                        e.on_task_end(core);
                        running[core] = false;
                    }
                }
                _ => {
                    if !running[core] {
                        e.on_core_idle(core);
                    }
                }
            }
            prop_assert!(e.check_invariants().is_ok(), "{:?}", e.check_invariants());
            prop_assert!(e.accelerated_count() <= budget);
        }
    }

    /// Data-dependence derivation: writers to one region are totally
    /// ordered (each new writer depends — directly or transitively — on the
    /// previous one), for arbitrary access sequences.
    #[test]
    fn writers_are_totally_ordered(
        accesses in prop::collection::vec((0u64..4, 0u8..3), 1..60),
    ) {
        let mut tracker = DepTracker::new();
        let mut graph = TaskGraph::new();
        let ty = graph.add_type("t", 0);
        let mut last_writer: std::collections::HashMap<u64, TaskId> = Default::default();
        for (i, (region, mode)) in accesses.iter().enumerate() {
            let mode = match mode {
                0 => AccessMode::In,
                1 => AccessMode::Out,
                _ => AccessMode::InOut,
            };
            let id = TaskId(i as u32);
            let deps = tracker.deps_for(id, &[(RegionId(*region), mode)]);
            let id2 = graph.add_task(ty, ExecProfile::new(1, 0), &deps);
            prop_assert_eq!(id, id2);
            if mode.writes() {
                if let Some(&prev) = last_writer.get(region) {
                    // prev must be reachable from id through preds.
                    let mut stack = vec![id];
                    let mut seen = std::collections::HashSet::new();
                    let mut found = false;
                    while let Some(t) = stack.pop() {
                        if t == prev {
                            found = true;
                            break;
                        }
                        for &p in graph.preds(t) {
                            if seen.insert(p) {
                                stack.push(p);
                            }
                        }
                    }
                    prop_assert!(found, "writer {} not ordered after {}", id, prev);
                }
                last_writer.insert(*region, id);
            }
        }
    }

    /// Workload generators always produce valid graphs for arbitrary seeds.
    #[test]
    fn generators_always_valid(seed in any::<u64>()) {
        use cata_workloads::{generate, Benchmark, Scale};
        for b in Benchmark::all() {
            let g = generate(b, Scale::Tiny, seed);
            prop_assert!(g.validate().is_ok(), "{}: {:?}", b.name(), g.validate());
            prop_assert!(g.num_tasks() > 0);
        }
    }

    /// Energy is monotone in time for an idle machine: longer runs cost
    /// more energy (the integrator never loses segments).
    #[test]
    fn idle_energy_monotone(ms_a in 1u64..50, ms_b in 51u64..200) {
        use cata_power::{integrate_machine, PowerParams};
        use cata_sim::machine::{Machine, MachineConfig};
        let p = PowerParams::mcpat_22nm();
        let energy_of = |ms: u64| {
            let mut m = Machine::new(MachineConfig::small_test(4));
            m.finish(SimTime::from_ms(ms));
            integrate_machine(&m, SimDuration::from_ms(ms), &p).energy_j
        };
        prop_assert!(energy_of(ms_b) > energy_of(ms_a));
    }
}
