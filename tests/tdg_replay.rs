//! TDG capture & replay: the round-trip and bit-identity contracts.
//!
//! The subsystem's promise is that a task graph is a first-class,
//! storable workload: `TaskGraph → TdgFile → TaskGraph` is the identity
//! (topology, profiles, criticalities), an exported generator workload
//! replayed from its `.tdg.json` produces a *bit-identical* sim
//! `RunReport`, and a natively `record`ed graph replays on the simulator
//! with the host's observed durations. These tests pin all three, plus
//! the spec-digest/store semantics that make replayed graphs behave like
//! any generated workload in suites, shards and JSONL stores.

use cata_core::exp::{
    spec_digest, CapturedGraph, Executor, ExpError, NativeExecutor, ResultsStore, Scenario,
    ScenarioSpec, ShardOrder, Suite, WorkloadSpec,
};
use cata_core::SimExecutor;
use cata_sim::progress::ExecProfile;
use cata_sim::time::SimDuration;
use cata_tdg::{TaskGraph, TaskId, TdgFile};
use cata_workloads::{Benchmark, Scale};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cata-tdg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A random graph with the full profile surface: several types (varying
/// criticality), memory time, and blocking points.
fn random_graph(n: usize, p: f64, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = TaskGraph::new();
    let types = [
        g.add_type("plain", 0),
        g.add_type("hot", 1),
        g.add_type("hotter", 3),
    ];
    for i in 0..n {
        let mut deps = Vec::new();
        for j in 0..i {
            if rng.gen_bool(p) {
                deps.push(TaskId(j as u32));
            }
        }
        let ty = types[rng.gen_range(0..3)];
        let mut profile = ExecProfile::new(rng.gen_range(1..1_000_000u64), rng.gen_range(0..5_000));
        if rng.gen_bool(0.3) {
            profile = profile.with_block(
                rng.gen_range(0.05..0.95),
                SimDuration::from_ns(rng.gen_range(1..10_000)),
            );
        }
        g.add_task(ty, profile, &deps);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `TaskGraph → TdgFile → TaskGraph` is the identity — topology,
    /// profiles (memory time and blocks included) and criticalities all
    /// survive, through the in-memory form and through JSON.
    #[test]
    fn tdg_file_round_trip_is_identity(n in 0usize..50, p in 0.0f64..0.4, seed in any::<u64>()) {
        let g = random_graph(n, p, seed);
        let file = TdgFile::from_graph("prop", &g);
        let back = file.to_graph().unwrap();
        prop_assert_eq!(&back, &g);
        back.validate().unwrap();
        // Through the serialized form too (the `.tdg.json` artifact).
        let reparsed = TdgFile::from_json(&file.to_json_pretty()).unwrap();
        prop_assert_eq!(&reparsed, &file);
        prop_assert_eq!(&reparsed.to_graph().unwrap(), &g);
    }

    /// The inline cost estimate is exact: the sum of per-task cycles.
    #[test]
    fn inline_cost_estimate_is_exact(n in 0usize..40, seed in any::<u64>()) {
        let g = random_graph(n, 0.2, seed);
        let want: u64 = g.tasks().map(|t| t.profile.cpu_cycles).sum();
        let w = WorkloadSpec::Inline(TdgFile::from_graph("prop", &g).into());
        prop_assert_eq!(w.cost_estimate(), want);
    }
}

const SEED: u64 = 42;

fn generator_spec() -> ScenarioSpec {
    ScenarioSpec::preset(
        "CATA",
        8,
        WorkloadSpec::parsec(Benchmark::Dedup, Scale::Tiny, SEED),
    )
    .unwrap()
}

fn run_sim(spec: &ScenarioSpec) -> cata_core::RunReport {
    SimExecutor::default()
        .run_spec(spec, cata_core::exp::default_registries())
        .unwrap()
        .0
}

/// The golden replay contract: a generator workload exported to a
/// `TdgFile` and replayed — inline or from disk — produces a RunReport
/// whose serialized form is byte-for-byte the generator run's.
#[test]
fn exported_generator_replays_bit_identically() {
    let spec = generator_spec();
    let original = run_sim(&spec);
    let original_json = serde_json::to_string(&original).unwrap();

    let graph = spec.workload.try_build_graph().unwrap();
    let tdg = TdgFile::from_graph(spec.workload.label(), &graph);

    // Inline replay.
    let mut inline_spec = spec.clone();
    inline_spec.workload = WorkloadSpec::Inline(tdg.clone().into());
    let inline_report = run_sim(&inline_spec);
    assert_eq!(
        serde_json::to_string(&inline_report).unwrap(),
        original_json,
        "inline replay diverged from the generator run"
    );

    // File replay, digest-pinned.
    let path = tmp("golden.tdg.json");
    std::fs::write(&path, tdg.to_json_pretty()).unwrap();
    let mut file_spec = spec.clone();
    file_spec.workload = WorkloadSpec::File {
        path: path.to_string_lossy().into_owned(),
        digest: Some(tdg.content_digest()),
    };
    let file_report = run_sim(&file_spec);
    assert_eq!(
        serde_json::to_string(&file_report).unwrap(),
        original_json,
        "file replay diverged from the generator run"
    );

    // The replayed cells are *distinct grid cells* nonetheless: the TDG
    // content participates in the spec digest.
    assert_ne!(spec_digest(&spec), spec_digest(&inline_spec));
    assert_ne!(spec_digest(&inline_spec), spec_digest(&file_spec));
}

/// The capture hook on the simulator returns the spec's exact graph.
#[test]
fn sim_capture_round_trips_through_the_executor() {
    let scenario = Scenario::from_spec(generator_spec());
    let (report, captured): (_, CapturedGraph) =
        SimExecutor::default().execute_captured(&scenario).unwrap();
    assert_eq!(captured.backend, "sim");
    assert!(!captured.calibrated);
    assert_eq!(captured.tdg.num_tasks(), report.tasks);
    let original = scenario.spec().workload.try_build_graph().unwrap();
    assert_eq!(captured.tdg.to_graph().unwrap(), original);
    // The capture replays to the same report as the original workload.
    let mut replay = scenario.spec().clone();
    replay.workload = WorkloadSpec::Inline(captured.tdg.into());
    assert_eq!(
        serde_json::to_string(&run_sim(&replay)).unwrap(),
        serde_json::to_string(&report).unwrap()
    );
}

/// A native `record` substitutes observed durations: the captured file
/// preserves topology and criticalities but carries measured profiles,
/// and it replays on the simulator.
#[test]
fn native_record_is_host_calibrated_and_replays_on_sim() {
    let mut spec = ScenarioSpec::preset(
        "CATA+RSU",
        2,
        WorkloadSpec::ForkJoin {
            waves: 2,
            width: 6,
            cycles: 400_000,
        },
    )
    .unwrap();
    spec.machine = cata_sim::machine::MachineConfig::small_test(4);
    spec.fast_cores = 2;
    let scenario = Scenario::from_spec(spec.clone());

    let exec = NativeExecutor::new()
        .max_workers(4)
        .energy_source(cata_core::exp::EnergySource::Model);
    let (report, captured) = exec.execute_captured(&scenario).unwrap();
    assert_eq!(captured.backend, "native");
    assert!(captured.calibrated);
    assert_eq!(
        report.counters.tasks_completed as usize,
        captured.tdg.num_tasks()
    );

    let original = spec.workload.try_build_graph().unwrap();
    let replayed = captured.tdg.to_graph().unwrap();
    // Same topology and criticalities…
    assert_eq!(replayed.num_tasks(), original.num_tasks());
    for id in original.task_ids() {
        assert_eq!(replayed.preds(id), original.preds(id));
        assert_eq!(
            replayed.type_of(id).criticality,
            original.type_of(id).criticality
        );
    }
    // …but observed profiles: every task really executed, so every
    // profile carries a measured (nonzero) duration, and the memory/block
    // model is folded into it.
    for t in replayed.tasks() {
        assert!(
            t.profile.cpu_cycles > 0,
            "task {} lost its measurement",
            t.id
        );
        assert_eq!(t.profile.mem_ps, 0);
        assert!(t.profile.blocks.is_empty());
    }

    // The calibrated capture replays on the simulator.
    let mut replay = spec;
    replay.workload = WorkloadSpec::Inline(captured.tdg.into());
    let sim_report = run_sim(&replay);
    assert_eq!(sim_report.tasks, report.tasks);
    assert!(sim_report.exec_time > SimDuration::ZERO);
}

/// `File` workloads are pinned by content digest: editing the file under
/// the spec is an error, not a silent different-graph run — and a stale
/// embedded digest is caught even when the spec does not pin one.
#[test]
fn file_digest_pins_are_enforced() {
    let g = random_graph(12, 0.3, 7);
    let tdg = TdgFile::from_graph("pinned", &g);
    let path = tmp("pinned.tdg.json");
    std::fs::write(&path, tdg.to_json_pretty()).unwrap();
    let path_str = path.to_string_lossy().into_owned();

    let pinned = WorkloadSpec::File {
        path: path_str.clone(),
        digest: Some(tdg.content_digest()),
    };
    assert_eq!(pinned.try_build_graph().unwrap(), g);
    assert_eq!(pinned.label(), "pinned");

    // Edit the file (refreshing its own digest so only the pin differs).
    let mut edited = tdg.clone();
    edited.tasks[0].profile.cpu_cycles += 1;
    edited.refresh_digest();
    let edited_path = tmp("pinned-edited.tdg.json");
    std::fs::write(&edited_path, edited.to_json_pretty()).unwrap();
    let stale_pin = WorkloadSpec::File {
        path: edited_path.to_string_lossy().into_owned(),
        digest: Some(tdg.content_digest()),
    };
    match stale_pin.try_build_graph() {
        Err(ExpError::Workload(msg)) => assert!(msg.contains("digest"), "{msg}"),
        other => panic!("stale pin must fail: {other:?}"),
    }

    // A missing file errors cleanly too. The infallible cost form ranks
    // it 0 (display/local heuristics); the fallible one surfaces it.
    let gone = WorkloadSpec::File {
        path: tmp("not-there.tdg.json").to_string_lossy().into_owned(),
        digest: None,
    };
    assert!(matches!(gone.try_build_graph(), Err(ExpError::Workload(_))));
    assert_eq!(gone.cost_estimate(), 0);
    assert!(matches!(
        gone.try_cost_estimate(),
        Err(ExpError::Workload(_))
    ));
}

/// Caches never mask edits. An inline TDG whose embedded digest went
/// stale errors even when the *original* graph is already in the shared
/// cache (the cache keys on computed content, not the trusted field), and
/// an unpinned `File` workload re-reads the file on every use — edits are
/// picked up mid-process, and a later pin captures the file as it is now.
#[test]
fn caches_never_serve_stale_graphs() {
    // Inline: build (and cache) the original, then probe with edited
    // content carrying the original's digest — must be a digest error,
    // not a silent replay of the cached original.
    let g = random_graph(14, 0.3, 11);
    let tdg = TdgFile::from_graph("stale-inline", &g);
    let original = WorkloadSpec::Inline(tdg.clone().into());
    assert_eq!(*original.try_build_graph_shared().unwrap(), g);
    let mut edited = tdg.clone();
    edited.tasks[0].profile.cpu_cycles += 7; // no refresh_digest()
    let stale = WorkloadSpec::Inline(edited.into());
    match stale.try_build_graph_shared() {
        Err(ExpError::Workload(msg)) => assert!(msg.contains("digest"), "{msg}"),
        Ok(graph) => panic!(
            "stale inline digest served a cached graph ({} tasks) instead of erroring",
            graph.num_tasks()
        ),
        Err(other) => panic!("wrong error: {other}"),
    }

    // Identical payload but a corrupted header must error too, even
    // though the valid original's graph sits in the cache under the same
    // content digest — validation must not depend on cache warmth.
    let mut bad_schema = tdg.clone();
    bad_schema.schema = "cata-tdg/v999".into();
    assert!(matches!(
        WorkloadSpec::Inline(bad_schema.into()).try_build_graph_shared(),
        Err(ExpError::Workload(_))
    ));

    // Unpinned file: the second read sees the rewrite.
    let path = tmp("iterating.tdg.json");
    std::fs::write(&path, tdg.to_json_pretty()).unwrap();
    let unpinned = WorkloadSpec::File {
        path: path.to_string_lossy().into_owned(),
        digest: None,
    };
    assert_eq!(unpinned.try_build_graph_shared().unwrap().num_tasks(), 14);
    let bigger = TdgFile::from_graph("stale-inline", &random_graph(20, 0.3, 12));
    std::fs::write(&path, bigger.to_json_pretty()).unwrap();
    assert_eq!(
        unpinned.try_build_graph_shared().unwrap().num_tasks(),
        20,
        "unpinned File must pick up the rewritten file"
    );
    // And pinning now pins the *current* content, not a cached revision.
    match WorkloadSpec::tdg_file_pinned(path.to_string_lossy().into_owned()).unwrap() {
        WorkloadSpec::File { digest, .. } => {
            assert_eq!(digest.as_deref(), Some(bigger.content_digest().as_str()));
        }
        other => panic!("expected a File workload, got {other:?}"),
    }
}

/// Snake sharding refuses a grid with an unreadable `File` cost: a host
/// that silently ranked it 0 would deal the serpentine differently from
/// a peer that can read the file, and the shards would no longer be
/// disjoint and covering. Striped sharding never consults costs and is
/// untouched.
#[test]
fn snake_sharding_errors_on_unreadable_file_costs() {
    let gone = WorkloadSpec::File {
        path: tmp("never-written.tdg.json").to_string_lossy().into_owned(),
        digest: None,
    };
    let specs = vec![
        ScenarioSpec::new("ok", WorkloadSpec::Chain { n: 2, cycles: 10 }).with_small_machine(2, 1),
        ScenarioSpec::new("gone", gone).with_small_machine(2, 1),
    ];
    let suite = Suite::from_specs(specs);
    match suite.clone().shard_ordered(1, 2, ShardOrder::Snake) {
        Err(ExpError::Workload(msg)) => assert!(msg.contains("snake"), "{msg}"),
        other => panic!("snake shard over an unreadable cost must fail: {other:?}"),
    }
    suite.shard(1, 2).unwrap();

    // A *readable but unpinned* File is refused too: without a content
    // pin, peer shards could read different revisions of the file and
    // deal from different rankings. Pinning the same file makes the
    // identical grid shard fine.
    let g = random_graph(6, 0.2, 21);
    let path = tmp("snake-pin.tdg.json");
    std::fs::write(&path, TdgFile::from_graph("snake-pin", &g).to_json_pretty()).unwrap();
    let path_str = path.to_string_lossy().into_owned();
    let grid = |workload: WorkloadSpec| {
        Suite::from_specs(vec![
            ScenarioSpec::new("ok", WorkloadSpec::Chain { n: 2, cycles: 10 })
                .with_small_machine(2, 1),
            ScenarioSpec::new("tdg", workload).with_small_machine(2, 1),
        ])
    };
    let unpinned = WorkloadSpec::File {
        path: path_str.clone(),
        digest: None,
    };
    match grid(unpinned).shard_ordered(1, 2, ShardOrder::Snake) {
        Err(ExpError::Workload(msg)) => assert!(msg.contains("pin"), "{msg}"),
        other => panic!("snake shard over an unpinned file must fail: {other:?}"),
    }
    let pinned = WorkloadSpec::tdg_file_pinned(path_str).unwrap();
    grid(pinned).shard_ordered(1, 2, ShardOrder::Snake).unwrap();
}

/// Replayed workloads flow through suites, stores and resume exactly like
/// generated ones: cells keyed by `(index, spec_digest)`, loaded instead
/// of re-run, and bit-identical to the generator's cells.
#[test]
fn inline_workloads_are_first_class_suite_cells() {
    let spec = generator_spec().with_small_machine(4, 2);
    let graph = spec.workload.try_build_graph().unwrap();
    let tdg = TdgFile::from_graph(spec.workload.label(), &graph);
    let mut inline = spec.clone();
    inline.workload = WorkloadSpec::Inline(tdg.into());

    let path = tmp("inline-suite.jsonl");
    let _ = std::fs::remove_file(&path);
    let exec = SimExecutor::default();

    let suite = Suite::from_specs(vec![spec.clone(), inline.clone()]);
    let store = ResultsStore::open(&path).unwrap();
    let out = suite.run_with_store(&exec, &store).results;
    let gen_report = out[0].as_ref().unwrap();
    let replay_report = out[1].as_ref().unwrap();
    assert_eq!(
        serde_json::to_string(gen_report).unwrap(),
        serde_json::to_string(replay_report).unwrap(),
        "the replay cell must be bit-identical to the generator cell"
    );

    // Resume: both cells load from the store, nothing re-executes.
    let store = ResultsStore::open(&path).unwrap();
    let outcome = Suite::from_specs(vec![spec, inline]).run_with_store(&exec, &store);
    assert_eq!(outcome.resumed, 2);
    assert_eq!(outcome.executed, 0);
}

/// Editing an inline TDG changes the spec digest — the replayed graph's
/// content is its identity, so a store never serves a stale graph.
#[test]
fn inline_content_is_part_of_the_cell_identity() {
    let g = random_graph(10, 0.25, 3);
    let tdg = TdgFile::from_graph("ident", &g);
    let base = ScenarioSpec::preset("FIFO", 2, WorkloadSpec::Inline(tdg.clone().into()))
        .unwrap()
        .with_small_machine(4, 2);
    let mut edited_tdg = tdg;
    edited_tdg.tasks[1].profile.cpu_cycles *= 3;
    edited_tdg.refresh_digest();
    let mut edited = base.clone();
    edited.workload = WorkloadSpec::Inline(edited_tdg.into());
    assert_ne!(spec_digest(&base), spec_digest(&edited));

    // And the spec round-trips through JSON and TOML with the TDG aboard.
    let json = base.to_json();
    assert_eq!(ScenarioSpec::from_json(&json).unwrap(), base);
    let toml_text = base.to_toml();
    assert_eq!(ScenarioSpec::from_toml(&toml_text).unwrap(), base);
}
