//! Integration tests for the calibrated native energy model and the
//! backend suite axis: native cells carry nonzero, provenance-tagged,
//! sim-comparable energy; stores round-trip the new `backend` and
//! `measurement` fields while legacy records still parse; and a
//! two-backend grid runs through the store path end to end.

use cata_core::exp::{
    Backend, BackendDispatch, CellRecord, EnergySource, Executor, NativeExecutor, ResultsStore,
    Scenario, ScenarioSpec, Suite, WorkloadSpec,
};
use cata_core::SimExecutor;
use cata_cpufreq::backend::{DvfsBackend, MockDvfs};
use cata_power::{model_native_energy, BusyIntervals, Measurement, PowerParams};
use cata_sim::machine::{MachineConfig, PowerLevel};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cata-energy-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn small_spec(name: &str, backend: Backend) -> ScenarioSpec {
    ScenarioSpec::preset(
        name,
        2,
        WorkloadSpec::ForkJoin {
            waves: 2,
            width: 6,
            cycles: 400_000,
        },
    )
    .unwrap()
    .with_small_machine(4, 2)
    .with_backend(backend)
}

fn mock_dispatch() -> BackendDispatch {
    BackendDispatch::new().with_native(
        NativeExecutor::new()
            .max_workers(4)
            .energy_source(EnergySource::Model)
            .backend(Arc::new(MockDvfs::new(4, 1_000_000)) as Arc<dyn DvfsBackend>),
    )
}

/// The acceptance path: a sim + native grid through `run_with_store`, both
/// cells with nonzero energy and the right provenance, loadable and
/// mergeable, EDP defined everywhere.
#[test]
fn two_backend_suite_stores_comparable_energy() {
    let path = tmp("two-backend.jsonl");
    let _ = std::fs::remove_file(&path);
    let specs = vec![
        small_spec("CATA+RSU", Backend::Sim),
        small_spec("CATA+RSU", Backend::Native),
    ];
    let store = ResultsStore::open(&path).unwrap();
    let outcome = Suite::from_specs(specs).run_with_store(&mock_dispatch(), &store);
    assert_eq!(outcome.executed, 2);
    let reports: Vec<_> = outcome.results.into_iter().map(|r| r.unwrap()).collect();

    assert_eq!(reports[0].energy.measurement, Measurement::Simulated);
    assert_eq!(reports[1].energy.measurement, Measurement::Modeled);
    for r in &reports {
        assert!(r.energy.has_energy(), "{} reports 0 J", r.label);
        assert!(r.energy.edp > 0.0 && r.energy.edp.is_finite());
    }
    // The paper's metric exists in both directions — no division by zero.
    let norm = reports[1].edp_normalized_to(&reports[0]).unwrap();
    assert!(norm.is_finite() && norm > 0.0);

    // The merged store renders both cells; neither prints 0/inf/NaN EDP.
    let merged = ResultsStore::merge_files(&[&path]).unwrap();
    assert_eq!(merged.records.len(), 2);
    let cells: Vec<&str> = merged.records.iter().map(|r| r.cell.as_str()).collect();
    assert!(cells.iter().any(|c| c.ends_with("/sim")), "{cells:?}");
    assert!(cells.iter().any(|c| c.ends_with("/native")), "{cells:?}");
    for rec in &merged.records {
        let s = rec.report.summary();
        assert!(!s.contains("edp=0.000000"), "{s}");
        assert!(!s.contains("inf") && !s.contains("NaN"), "{s}");
    }
}

/// Store round-trip preserves the new fields bit-exactly, and records
/// written before they existed (no `backend` in the spec digest input, no
/// `measurement` in the energy map) still parse.
#[test]
fn store_round_trips_backend_and_measurement_with_legacy_compat() {
    let path = tmp("round-trip.jsonl");
    let _ = std::fs::remove_file(&path);
    let spec = small_spec("CATA", Backend::Native);
    let report = mock_dispatch()
        .execute(&Scenario::from_spec(spec.clone()))
        .unwrap();
    let rec = CellRecord::new(0, &spec, "grid".into(), 0.1, report);
    let store = ResultsStore::open(&path).unwrap();
    store.append(&rec).unwrap();
    let (loaded, _) = ResultsStore::load(&path).unwrap();
    assert_eq!(loaded[0].cell, rec.cell);
    assert_eq!(loaded[0].report.energy.measurement, Measurement::Modeled);
    assert_eq!(
        serde_json::to_string(&loaded[0].report).unwrap(),
        serde_json::to_string(&rec.report).unwrap(),
        "stored native report must round-trip bit-identically"
    );

    // A legacy line: strip the new fields from the serialized record the
    // way a pre-backend writer would have produced it.
    let line = serde_json::to_string(&rec).unwrap();
    let legacy = line
        .replace(",\"measurement\":\"modeled\"", "")
        .replace(",\"backend\":\"native\"", "");
    assert_ne!(line, legacy, "the fixture must actually strip something");
    let legacy_path = tmp("legacy.jsonl");
    std::fs::write(&legacy_path, format!("{legacy}\n")).unwrap();
    let (parsed, truncated) = ResultsStore::load(&legacy_path).unwrap();
    assert!(!truncated);
    assert_eq!(parsed.len(), 1, "legacy records must still parse");
    assert_eq!(parsed[0].report.energy.measurement, Measurement::None);
    assert!(
        parsed[0].report.summary().contains("edp="),
        "legacy reports still summarize"
    );
}

/// A sim spec's serialized form — and therefore its store digest — is
/// byte-identical to the pre-backend layout, so existing stores resume.
#[test]
fn sim_spec_digests_are_stable_across_the_backend_field() {
    let spec = small_spec("FIFO", Backend::Sim);
    assert!(!spec.to_json().contains("backend"));
    let named = spec.clone().with_backend(Backend::Native);
    assert_ne!(
        cata_core::exp::spec_digest(&spec),
        cata_core::exp::spec_digest(&named),
        "the backend must be part of the cell identity"
    );
}

/// The calibrated model is deterministic given the recorded intervals —
/// the property that makes modeled energy auditable even though the
/// intervals themselves vary run to run.
#[test]
fn modeled_energy_is_a_pure_function_of_observations() {
    let params = PowerParams::mcpat_22nm();
    let iv = [
        BusyIntervals {
            busy_fast_s: 0.031,
            busy_slow_s: 0.007,
        },
        BusyIntervals {
            busy_fast_s: 0.0,
            busy_slow_s: 0.044,
        },
    ];
    let runs: Vec<u64> = (0..3)
        .map(|_| {
            model_native_energy(
                &params,
                PowerLevel::paper_fast(),
                PowerLevel::paper_slow(),
                2,
                0.05,
                &iv,
            )
            .energy_j
            .to_bits()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

/// The zero-energy guard end to end: a legacy-style 0 J report cannot be a
/// normalization baseline, and both table layers render `n/a` rather than
/// `0.000000` or `inf`.
#[test]
fn zero_energy_baselines_render_na_everywhere() {
    let spec = small_spec("FIFO", Backend::Sim);
    let real = SimExecutor::default()
        .execute(&Scenario::from_spec(spec))
        .unwrap();
    let mut zero = real.clone();
    zero.energy = cata_power::EnergyReport::from_parts(
        real.energy.time_s,
        cata_power::EnergyBreakdown::default(),
    );
    assert_eq!(real.edp_normalized_to(&zero), None);
    assert_eq!(
        zero.edp_normalized_to(&real),
        None,
        "an energy-less numerator must not render 0.000"
    );
    let s = zero.summary();
    assert!(s.contains("energy=n/a") && s.contains("edp=n/a"), "{s}");
    assert!(s.contains("src=none"), "{s}");
}

/// A clamped native run (spec machine wider than the worker pool) models
/// energy over the *spec* machine — the unmapped cores are priced idle at
/// the slow level so the joules stay comparable with full-width sim cells
/// — and the provenance tag says so.
#[test]
fn clamped_native_run_scales_energy_to_the_spec_machine() {
    let mut spec = small_spec("CATA", Backend::Native);
    spec.machine = MachineConfig::small_test(8);
    spec.fast_cores = 2;
    let exec = NativeExecutor::new()
        .max_workers(2)
        .energy_source(EnergySource::Model)
        .backend(Arc::new(MockDvfs::new(2, 1_000_000)) as Arc<dyn DvfsBackend>);
    let report = exec.execute(&Scenario::from_spec(spec)).unwrap();
    assert_eq!(report.effective_cores, Some(2), "the clamp must surface");
    assert_eq!(report.energy.measurement, Measurement::ModeledScaled);
    assert!(
        report.summary().contains("src=modeled-scaled"),
        "{}",
        report.summary()
    );
    // Six idle spec cores are priced in: the energy must exceed what the
    // two mapped workers alone could account for at the idle floor.
    let p = PowerParams::mcpat_22nm();
    let wall = report.energy.time_s;
    let idle_floor_8 = 8.0
        * wall
        * (p.dynamic_w(PowerLevel::paper_slow(), cata_sim::activity::Activity::Idle)
            + p.static_w(PowerLevel::paper_slow()));
    assert!(
        report.energy.energy_j >= idle_floor_8,
        "scaled model must price all 8 spec cores: {} J < floor {} J",
        report.energy.energy_j,
        idle_floor_8
    );
    // And the scaled report round-trips through serde.
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("\"measurement\":\"modeled-scaled\""));
    let back: cata_core::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.energy.measurement, Measurement::ModeledScaled);
}

/// The machine's worker count shrinks to the host, but the energy model
/// scales with the workers that actually ran — wall time × workers bounds
/// the modeled core-seconds.
#[test]
fn modeled_energy_tracks_the_run_not_the_paper_machine() {
    let mut spec = small_spec("CATA", Backend::Native);
    spec.machine = MachineConfig::small_test(2);
    spec.fast_cores = 1;
    let report = mock_dispatch().execute(&Scenario::from_spec(spec)).unwrap();
    let wall = report.energy.time_s;
    assert!(wall > 0.0);
    // Upper bound: every worker busy-fast the whole time plus uncore.
    let p = PowerParams::mcpat_22nm();
    let ceiling = 2.0
        * wall
        * (p.dynamic_w(PowerLevel::paper_fast(), cata_sim::activity::Activity::Busy)
            + p.static_w(PowerLevel::paper_fast()))
        + p.uncore_w * wall
        + 1e-9;
    assert!(
        report.energy.energy_j <= ceiling,
        "modeled {} J exceeds physical ceiling {} J",
        report.energy.energy_j,
        ceiling
    );
}
