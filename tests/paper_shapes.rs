//! Qualitative reproduction tests: the *shapes* of the paper's results (who
//! wins, in which direction, on which workload class) asserted at Small
//! scale. These are the executable form of EXPERIMENTS.md.
//!
//! The simulations are deterministic, so these are stable regression tests
//! for the calibration; tolerances are loose enough that they test the
//! qualitative claim, not a specific decimal.

use cata_bench::figures::{fig4_configs, fig5_configs};
use cata_bench::matrix::{run_matrix, DEFAULT_SEED};
use cata_core::exp::Scenario;
use cata_core::{ScenarioSpec, SimExecutor, WorkloadSpec};
use cata_workloads::{Benchmark, Scale};

fn fig4_matrix() -> cata_bench::MatrixResult {
    run_matrix(
        &Benchmark::all(),
        &[8, 16, 24],
        fig4_configs,
        Scale::Small,
        DEFAULT_SEED,
        0,
    )
}

fn fig5_matrix() -> cata_bench::MatrixResult {
    run_matrix(
        &Benchmark::all(),
        &[8, 16, 24],
        fig5_configs,
        Scale::Small,
        DEFAULT_SEED,
        0,
    )
}

/// Paper §V-B: CATA clearly outperforms FIFO on average (paper: +15.9 % to
/// +18.4 %).
#[test]
fn cata_beats_fifo_on_average() {
    let m = fig4_matrix();
    for fast in [8, 16] {
        let avg = m.avg_speedup(&Benchmark::all(), fast, "CATA");
        assert!(
            avg > 1.08,
            "CATA average at {fast} fast cores only {avg:.3}"
        );
    }
}

/// Paper §V-A: criticality-aware scheduling helps (CATS ≥ FIFO on average),
/// and static annotations do at least as well as bottom-level at 16+ fast
/// cores (paper: SA "provides slightly better performance").
#[test]
fn cats_helps_and_sa_is_at_least_bl() {
    let m = fig4_matrix();
    for fast in [8, 16, 24] {
        let sa = m.avg_speedup(&Benchmark::all(), fast, "CATS+SA");
        assert!(sa > 1.0, "CATS+SA average at {fast}: {sa:.3}");
    }
    for fast in [16, 24] {
        let sa = m.avg_speedup(&Benchmark::all(), fast, "CATS+SA");
        let bl = m.avg_speedup(&Benchmark::all(), fast, "CATS+BL");
        assert!(sa >= bl - 0.005, "SA {sa:.3} < BL {bl:.3} at {fast} fast");
    }
}

/// Paper §V-A: pipeline applications benefit most from CATS — Dedup is the
/// showcase (paper: up to +20.2 %).
#[test]
fn dedup_is_the_cats_showcase() {
    let m = fig4_matrix();
    let dd = m.speedup(Benchmark::Dedup, 8, "CATS+SA");
    assert!(dd > 1.15, "Dedup CATS+SA speedup only {dd:.3}");
    // Fork-join apps gain almost nothing from CATS (no criticality spread).
    let bs = m.speedup(Benchmark::Blackscholes, 8, "CATS+SA");
    assert!(
        (0.97..1.06).contains(&bs),
        "Blackscholes CATS+SA {bs:.3} should be ≈1"
    );
}

/// Paper §V-A: bottom-level misclassifies Bodytrack (durations vary 10×,
/// BL sees only hop counts) — CATS+SA beats CATS+BL there.
#[test]
fn bodytrack_sa_beats_bl() {
    let m = fig4_matrix();
    for fast in [8, 16] {
        let sa = m.speedup(Benchmark::Bodytrack, fast, "CATS+SA");
        let bl = m.speedup(Benchmark::Bodytrack, fast, "CATS+BL");
        assert!(sa > bl, "Bodytrack at {fast}: SA {sa:.3} ≤ BL {bl:.3}");
    }
}

/// Paper §V-B: CATA's wins concentrate on the imbalanced fork-join /
/// stencil applications (Swaptions, Fluidanimate), where it re-assigns the
/// freed budget to stragglers.
#[test]
fn cata_wins_on_imbalanced_apps() {
    let m = fig4_matrix();
    for (b, min) in [
        (Benchmark::Swaptions, 1.15),
        (Benchmark::Fluidanimate, 1.03),
    ] {
        let s = m.speedup(b, 8, "CATA");
        assert!(s > min, "{} CATA speedup {s:.3} < {min}", b.name());
    }
}

/// Paper §V-B: Blackscholes barely benefits and can slightly *lose* at 24
/// fast cores (reconfiguration overhead on tiny uniform tasks).
#[test]
fn blackscholes_cata_is_flat_or_slightly_negative() {
    let m = fig4_matrix();
    for fast in [8, 16, 24] {
        let s = m.speedup(Benchmark::Blackscholes, fast, "CATA");
        assert!(
            (0.90..1.10).contains(&s),
            "Blackscholes CATA at {fast} out of band: {s:.3}"
        );
    }
}

/// Paper §V-C: the RSU improves on software CATA everywhere on average, and
/// most on the reconfiguration-heavy applications.
#[test]
fn rsu_improves_on_software_cata() {
    let m = fig5_matrix();
    for fast in [8, 16, 24] {
        let sw = m.avg_speedup(&Benchmark::all(), fast, "CATA");
        let hw = m.avg_speedup(&Benchmark::all(), fast, "CATA+RSU");
        assert!(hw >= sw, "at {fast} fast: RSU {hw:.3} < CATA {sw:.3}");
    }
    // Per-benchmark: RSU never loses by more than noise.
    for b in Benchmark::all() {
        for fast in [8, 16, 24] {
            let sw = m.speedup(b, fast, "CATA");
            let hw = m.speedup(b, fast, "CATA+RSU");
            assert!(
                hw > sw - 0.02,
                "{} at {fast}: RSU {hw:.3} well below CATA {sw:.3}",
                b.name()
            );
        }
    }
}

/// Paper §V-D: TurboMode trails CATA+RSU on average and degrades on the
/// pipeline applications (it accelerates blindly), while staying
/// competitive on fork-join.
#[test]
fn turbomode_loses_to_rsu_especially_on_pipelines() {
    let m = fig5_matrix();
    for fast in [8, 16, 24] {
        let hw = m.avg_speedup(&Benchmark::all(), fast, "CATA+RSU");
        let tb = m.avg_speedup(&Benchmark::all(), fast, "TurboMode");
        assert!(tb < hw, "at {fast}: TurboMode {tb:.3} ≥ RSU {hw:.3}");
    }
    for b in [Benchmark::Dedup, Benchmark::Ferret] {
        let hw = m.speedup(b, 16, "CATA+RSU");
        let tb = m.speedup(b, 16, "TurboMode");
        assert!(
            hw > tb + 0.05,
            "{}: pipeline gap missing (RSU {hw:.3}, Turbo {tb:.3})",
            b.name()
        );
    }
}

/// Paper §V-B: EDP improvements exceed the execution-time improvements
/// (idle cores are decelerated, so energy falls faster than time).
#[test]
fn edp_gains_exceed_time_gains_for_cata() {
    let m = fig4_matrix();
    for fast in [8, 16] {
        let speedup = m.avg_speedup(&Benchmark::all(), fast, "CATA");
        let edp = m
            .avg_edp(&Benchmark::all(), fast, "CATA")
            .expect("simulated baselines carry energy");
        // EDP gain (1/edp) should exceed the speedup.
        assert!(
            1.0 / edp > speedup,
            "at {fast}: EDP gain {:.3} ≤ speedup {speedup:.3}",
            1.0 / edp
        );
        assert!(edp < 0.95, "CATA EDP not clearly better: {edp:.3}");
    }
}

/// Paper §V-D: TurboMode's fork-join speedups come at higher energy — its
/// normalized EDP is worse than CATA+RSU's on average.
#[test]
fn turbomode_pays_energy_for_its_speed() {
    let m = fig5_matrix();
    for fast in [16, 24] {
        let hw = m
            .avg_edp(&Benchmark::all(), fast, "CATA+RSU")
            .expect("simulated baselines carry energy");
        let tb = m
            .avg_edp(&Benchmark::all(), fast, "TurboMode")
            .expect("simulated baselines carry energy");
        assert!(
            tb > hw - 0.005,
            "at {fast}: Turbo EDP {tb:.3} ≪ RSU {hw:.3}"
        );
    }
}

/// Paper §V-C (text): CATA's average reconfiguration overhead sits in the
/// fractions-of-a-percent to few-percent band, with µs-scale average
/// latencies and far larger worst-case lock waits.
#[test]
fn reconfiguration_overhead_in_paper_band() {
    for bench in Benchmark::all() {
        let spec = ScenarioSpec::preset(
            "CATA",
            16,
            WorkloadSpec::parsec(bench, Scale::Small, DEFAULT_SEED),
        )
        .expect("paper preset");
        let r = Scenario::from_spec(spec)
            .run(&SimExecutor::default())
            .expect("scenario run");
        assert!(
            r.reconfig_time_share < 0.12,
            "{}: overhead share {:.3} implausibly high",
            bench.name(),
            r.reconfig_time_share
        );
        if r.reconfig_latencies.count() > 10 {
            let mean = r.reconfig_latencies.mean();
            assert!(
                mean.as_us() < 100,
                "{}: mean latency {} out of band",
                bench.name(),
                mean
            );
            assert!(r.lock_waits.max() >= mean, "worst lock wait below the mean");
        }
    }
}

/// The RSU hardware-overhead claims of §III-B-4 hold: 103 bits at 32 cores /
/// 2 power states, negligible area, well under 50 µW.
#[test]
fn rsu_overhead_claims() {
    use cata_rsu::overhead::{estimate, storage_bits, TechParams};
    assert_eq!(storage_bits(32, 2), 103);
    let o = estimate(32, 2, &TechParams::nm22());
    assert!(o.area_fraction < 1e-6);
    assert!(o.power_uw < 50.0);
}
