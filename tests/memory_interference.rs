//! Memory-interference integration tests: golden-absence (the memory
//! subsystem changes *nothing* when no `MemorySpec` is present, and
//! `slots = inf` is bit-identical to no spec at all), unknown-key
//! arbitration errors, same-seed determinism of the `MemoryReport`,
//! criticality-aware arbitration beating FIFO on critical wait, and
//! conservation / monotonicity properties over slot counts.

use cata_core::exp::{default_registries, spec_digest, ExpError, ScenarioSpec, WorkloadSpec};
use cata_core::mem::MemorySpec;
use cata_core::service::{default_admission_registry, run_service, ArrivalSpec, ServiceSpec};
use cata_core::{RunReport, SimExecutor};
use cata_sim::time::SimDuration;
use cata_workloads::{Benchmark, Scale};
use proptest::prelude::*;

const SEED: u64 = 42;

/// A small closed-system scenario over a Parsec-style workload: those
/// tasks carry a memory fraction (`mem_ps > 0`), so a slot-bounded
/// subsystem actually contends. 8 cores keep slots=1 heavily oversubscribed.
fn base(preset: &str) -> ScenarioSpec {
    let mut spec = ScenarioSpec::preset(
        preset,
        4,
        WorkloadSpec::parsec(Benchmark::Dedup, Scale::Tiny, SEED),
    )
    .expect("preset")
    .with_small_machine(8, 4);
    spec.seed = SEED;
    spec
}

fn with_memory(mut spec: ScenarioSpec, slots: u64, arbitration: &str) -> ScenarioSpec {
    spec.memory = Some(MemorySpec {
        slots,
        arbitration: arbitration.into(),
    });
    spec
}

fn run(spec: &ScenarioSpec) -> Result<RunReport, ExpError> {
    SimExecutor::default()
        .run_spec(spec, default_registries())
        .map(|(r, _)| r)
}

/// Memory-free specs and reports serialize without any memory key at all
/// — the byte-identity guarantee behind every pre-memory store digest
/// and golden preset (the behavioral half is pinned by `golden_digest.rs`).
#[test]
fn memory_free_serialization_has_no_memory_keys() {
    let spec = base("CATA");
    assert!(spec.memory.is_none());
    let json = spec.to_json();
    assert!(
        !json.contains("memory"),
        "spec JSON grew a memory key: {json}"
    );
    let report = run(&spec).expect("run");
    assert!(report.memory.is_none());
    let rejson = serde_json::to_string(&report).expect("serialize");
    assert!(
        !rejson.contains("\"memory\""),
        "report JSON grew a memory key"
    );
}

/// A spec that *does* pin memory round-trips exactly — and digests
/// differently from its memory-free twin (it is a different experiment).
#[test]
fn memory_spec_round_trips_and_changes_the_digest() {
    let plain = base("CATA");
    let pinned = with_memory(base("CATA"), 2, "crit-first");
    let json = pinned.to_json();
    assert!(json.contains("\"slots\""), "memory spec not serialized");
    let back = ScenarioSpec::from_json(&json).expect("round-trip");
    assert_eq!(back.to_json(), json);
    assert_eq!(back.memory, pinned.memory);
    assert_ne!(spec_digest(&plain), spec_digest(&pinned));
}

/// `slots = 0` spells "unlimited": the spec serializes the field (it was
/// asked for) but the engine bypasses the gate entirely, so the *report*
/// is bit-identical to the memory-free run — no memory section at all.
#[test]
fn unlimited_slots_report_is_bit_identical_to_no_spec() {
    let plain = run(&base("CATA")).expect("run");
    let unlimited = run(&with_memory(base("CATA"), 0, "fifo")).expect("run");
    assert!(unlimited.memory.is_none());
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&unlimited).unwrap(),
        "slots=inf diverged from the memory-free engine"
    );
}

/// An unknown arbitration key dies with an error naming every known key,
/// so a typo is a one-round-trip fix.
#[test]
fn unknown_arbitration_key_lists_the_known_set() {
    let err = run(&with_memory(base("CATA"), 1, "bogus")).expect_err("must fail");
    let msg = err.to_string();
    assert!(msg.contains("bogus"), "{msg}");
    for key in ["fifo", "crit-first", "round-robin"] {
        assert!(msg.contains(key), "error does not name `{key}`: {msg}");
    }
}

/// Same spec, same seed, twice: the memory accounting digests equal.
#[test]
fn memory_report_is_deterministic() {
    let spec = with_memory(base("CATA"), 1, "crit-first");
    let a = run(&spec).expect("run").memory.expect("memory report");
    let b = run(&spec).expect("run").memory.expect("memory report");
    assert_eq!(a.digest(), b.digest());
    assert!(a.waited > 0, "slots=1 on 8 cores must contend");
}

/// The CAM idea: arbitration that prefers critical tasks must cut the
/// critical-task wait relative to FIFO on a contended machine (total
/// demand is identical — only who waits changes).
#[test]
fn crit_first_beats_fifo_on_critical_wait() {
    let fifo = run(&with_memory(base("CATA"), 1, "fifo"))
        .expect("run")
        .memory
        .expect("memory report");
    let cam = run(&with_memory(base("CATA"), 1, "crit-first"))
        .expect("run")
        .memory
        .expect("memory report");
    assert_eq!(fifo.demand, cam.demand, "same workload, same demand");
    assert!(
        fifo.crit_requests > 0,
        "dedup must schedule critical memory requests"
    );
    assert!(
        cam.crit_wait < fifo.crit_wait,
        "crit-first {} must beat fifo {} on critical wait",
        cam.crit_wait,
        fifo.crit_wait
    );
}

/// Fewer slots can only slow things down: walking slots from unlimited
/// down to 1, the makespan never decreases and the queued wait never
/// shrinks. (The gate delays task starts without re-ranking the ready
/// queue, so the classic Graham speed-up anomaly has no lever here.)
#[test]
fn fewer_slots_never_speed_up_the_run() {
    let unlimited = run(&base("CATA")).expect("run");
    let mut prev_time = unlimited.exec_time;
    let mut prev_wait = SimDuration::ZERO;
    for slots in [8, 4, 2, 1] {
        let report = run(&with_memory(base("CATA"), slots, "fifo")).expect("run");
        let mem = report.memory.expect("memory report");
        assert!(
            report.exec_time >= prev_time,
            "slots={slots} ran faster ({} < {prev_time})",
            report.exec_time
        );
        assert!(
            mem.total_wait >= prev_wait,
            "slots={slots} waited less ({} < {prev_wait})",
            mem.total_wait
        );
        prev_time = report.exec_time;
        prev_wait = mem.total_wait;
    }
}

/// Service mode composes with the gate: a contended open-system run
/// carries the same accounting and still clears its arrival load.
#[test]
fn service_mode_reports_memory_interference() {
    let spec = ServiceSpec::new(
        with_memory(base("CATA"), 1, "crit-first"),
        ArrivalSpec::Fixed { rate_hz: 2000.0 },
        SimDuration::from_ms(5),
    );
    let (report, _tape) = run_service(&spec, default_registries(), default_admission_registry())
        .expect("service run");
    let mem = report.memory.expect("memory report");
    assert!(mem.requests > 0);
    assert!(mem.waited > 0, "slots=1 under load must contend");
    assert!(mem.serviced >= mem.demand);
    let service = report.service.expect("service metrics");
    assert!(service.completed > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation over random seeds and slot counts, fault-free: every
    /// request is eventually serviced, so serviced time ≥ demanded time
    /// (the surplus is exactly the queued waiting) — with equality, and
    /// zero waits, whenever slots cover every core.
    #[test]
    fn serviced_time_conserves_demand(seed in 0u64..200, slots in 1u64..12) {
        let mut spec = with_memory(base("CATA"), slots, "fifo");
        spec.workload = WorkloadSpec::parsec(Benchmark::Dedup, Scale::Tiny, seed);
        spec.seed = seed;
        let mem = run(&spec).unwrap().memory.expect("memory report");
        prop_assert!(mem.requests > 0, "dedup tasks demand memory");
        prop_assert!(mem.serviced >= mem.demand,
            "serviced {} < demand {}", mem.serviced, mem.demand);
        prop_assert_eq!(mem.serviced - mem.demand, mem.total_wait,
            "surplus must be exactly the queued wait");
        if slots >= 8 {
            // Eight cores can never oversubscribe eight slots.
            prop_assert_eq!(mem.waited, 0u64);
            prop_assert_eq!(mem.serviced, mem.demand);
        }
    }
}
