//! Tests of the `exp` facade from *outside* `cata-core`: spec
//! serialization, registry resolution, error paths, suite determinism, and
//! — the point of the redesign — a third-party policy registered without
//! touching any core enum.

use cata_core::exp::{
    ExpError, NativeExecutor, PolicyRegistries, Scenario, ScenarioSpec, Suite, WorkloadSpec,
};
use cata_core::policy::{DispatchCtx, SchedulerPolicy};
use cata_core::{Executor, SimExecutor};
use cata_sim::machine::CoreId;
use cata_sim::stats::Counters;
use cata_tdg::TaskId;
use cata_workloads::{Benchmark, Scale};
use std::sync::Arc;

const SEED: u64 = 0x5EED_CA7A;

fn tiny_workload() -> WorkloadSpec {
    WorkloadSpec::parsec(Benchmark::Swaptions, Scale::Tiny, SEED)
}

/// Serde round-trip: JSON and TOML both reconstruct the exact spec,
/// including optional fields in both states.
#[test]
fn scenario_spec_round_trips_json_and_toml() {
    for label in [
        "FIFO",
        "CATS+BL",
        "CATS+SA",
        "CATA",
        "CATA+RSU",
        "TurboMode",
    ] {
        let spec = ScenarioSpec::preset(label, 16, tiny_workload()).unwrap();
        let json = spec.to_json_pretty();
        let from_json = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(from_json, spec, "{label} JSON round-trip");
        let toml_text = spec.to_toml();
        let from_toml = ScenarioSpec::from_toml(&toml_text).unwrap();
        assert_eq!(from_toml, spec, "{label} TOML round-trip");
    }
}

/// A spec that has been through serialization still runs to the
/// bit-identical report — serialization is sufficient for reproduction.
#[test]
fn deserialized_spec_reproduces_the_run() {
    let exec = SimExecutor::default();
    let spec = ScenarioSpec::preset("CATA", 8, tiny_workload()).unwrap();
    let direct = Scenario::from_spec(spec.clone()).run(&exec).unwrap();
    let via_json = Scenario::from_spec(ScenarioSpec::from_json(&spec.to_json()).unwrap())
        .run(&exec)
        .unwrap();
    assert_eq!(direct.exec_time, via_json.exec_time);
    assert_eq!(direct.energy.energy_j, via_json.energy.energy_j);
    assert_eq!(
        direct.counters.reconfigs_applied,
        via_json.counters.reconfigs_applied
    );
}

/// All six paper configurations resolve through the registry and run end
/// to end through `Scenario`/`Executor`.
#[test]
fn all_six_presets_run_through_the_facade() {
    let exec = SimExecutor::default();
    for label in [
        "FIFO",
        "CATS+BL",
        "CATS+SA",
        "CATA",
        "CATA+RSU",
        "TurboMode",
    ] {
        let scenario = Scenario::preset(label, 8, tiny_workload()).unwrap();
        let report = scenario
            .run(&exec)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(report.label, label);
        assert!(report.counters.tasks_completed > 0, "{label} ran nothing");
    }
}

/// Unknown registry keys fail with errors naming the key and the known
/// alternatives — for each of the three dimensions.
#[test]
fn unknown_keys_error_cleanly() {
    let exec = SimExecutor::default();
    let base = ScenarioSpec::preset("FIFO", 8, tiny_workload()).unwrap();

    let mut s = base.clone();
    s.scheduler = "round-robin".into();
    match Scenario::from_spec(s).run(&exec) {
        Err(ExpError::UnknownScheduler { key, known }) => {
            assert_eq!(key, "round-robin");
            assert!(known.contains(&"fifo".to_string()));
        }
        other => panic!("wrong result: {other:?}"),
    }

    let mut s = base.clone();
    s.estimator = "oracle".into();
    assert!(matches!(
        Scenario::from_spec(s).run(&exec),
        Err(ExpError::UnknownEstimator { .. })
    ));

    let mut s = base.clone();
    s.accel = "overclock".into();
    assert!(matches!(
        Scenario::from_spec(s).run(&exec),
        Err(ExpError::UnknownAccel { .. })
    ));

    // Malformed spec text surfaces as a parse error, not a panic.
    assert!(matches!(
        ScenarioSpec::from_json("{not json"),
        Err(ExpError::Parse(_))
    ));
}

/// Same spec + same seed ⇒ bit-identical `RunReport`, whether the suite
/// runs serially or fanned across a thread pool.
#[test]
fn suite_is_deterministic_serial_vs_parallel() {
    let exec = SimExecutor::default();
    let specs = || ScenarioSpec::paper_matrix(8, tiny_workload());
    let serial = Suite::from_specs(specs()).jobs(1).run_all(&exec);
    let parallel = Suite::from_specs(specs()).jobs(6).run_all(&exec);
    assert_eq!(serial.len(), 6);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.exec_time, b.exec_time, "{}: time diverged", a.label);
        assert_eq!(
            a.energy.energy_j, b.energy.energy_j,
            "{}: energy diverged",
            a.label
        );
        assert_eq!(a.counters.reconfigs_applied, b.counters.reconfigs_applied);
        assert_eq!(a.lock_waits.count(), b.lock_waits.count());
    }
}

/// A scheduler policy defined *here* — outside `cata-core`, unknown to any
/// enum — registered under a new key and driven through the standard
/// facade: the acceptance test of the registry redesign.
#[derive(Default)]
struct LifoPolicy {
    stack: Vec<TaskId>,
}

impl SchedulerPolicy for LifoPolicy {
    fn name(&self) -> &'static str {
        "LIFO"
    }
    fn enqueue(&mut self, task: TaskId, _level: u8) {
        self.stack.push(task);
    }
    fn dequeue(
        &mut self,
        _core: CoreId,
        _ctx: DispatchCtx,
        _counters: &mut Counters,
    ) -> Option<TaskId> {
        self.stack.pop()
    }
    fn len(&self) -> usize {
        self.stack.len()
    }
    fn has_work_for(&self, _core: CoreId, _ctx: DispatchCtx) -> bool {
        !self.stack.is_empty()
    }
}

#[test]
fn custom_policy_registers_and_runs_without_core_enums() {
    let mut registries = PolicyRegistries::with_builtins();
    registries.register_scheduler("lifo", false, |_ctx| Ok(Box::new(LifoPolicy::default())));
    let registries = Arc::new(registries);

    let scenario = Scenario::builder("LIFO-run")
        .workload(tiny_workload())
        .scheduler("lifo")
        .estimator("none")
        .accel("static-hetero")
        .fast_cores(8)
        .registries(Arc::clone(&registries))
        .build();

    let report = scenario
        .run(&SimExecutor::default())
        .expect("custom policy runs");
    let expect = tiny_workload().build_graph().num_tasks() as u64;
    assert_eq!(report.counters.tasks_completed, expect, "LIFO lost tasks");

    // The custom key also works across a whole parallel suite.
    let mut spec = scenario.spec().clone();
    spec.name = "LIFO-suite".into();
    let reports = Suite::from_specs_with(vec![spec.clone(), spec], Some(registries))
        .jobs(2)
        .run_all(&SimExecutor::default());
    assert_eq!(reports[0].exec_time, reports[1].exec_time);
}

/// The native executor accepts the same scenarios (one call shape across
/// backends).
#[test]
fn native_executor_shares_the_call_shape() {
    let mut scenario = Scenario::preset(
        "CATA+RSU",
        2,
        WorkloadSpec::ForkJoin {
            waves: 2,
            width: 6,
            cycles: 100_000,
        },
    )
    .unwrap();
    scenario.spec_mut().machine = cata_sim::machine::MachineConfig::small_test(4);
    let report = NativeExecutor::new()
        .max_workers(2)
        .execute(&scenario)
        .expect("native run");
    assert_eq!(report.counters.tasks_completed, 14);
    assert_eq!(report.label, "CATA+RSU");
}
