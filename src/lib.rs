//! Workspace facade: re-exports every `cata-*` crate under one roof so the
//! top-level examples and integration tests (and downstream users wanting a
//! single dependency) can reach the whole system.

#![warn(missing_docs)]

pub use cata_bench as bench;
pub use cata_core as core;
pub use cata_cpufreq as cpufreq;
pub use cata_power as power;
pub use cata_rsu as rsu;
pub use cata_sim as sim;
pub use cata_tdg as tdg;
pub use cata_workloads as workloads;
