//! Vendored minimal `serde_json`: JSON text ⇄ the vendored `serde::Value`
//! data model. Supports the full JSON grammar this workspace needs —
//! objects, arrays, strings with escapes, integers, floats, bools, null.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

/// Parses a JSON string into a raw [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` keeps a decimal point or exponent, so the value parses back
        // as a float (and is also valid TOML).
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') | Some(b'f') => self.boolean(),
            Some(b'n') => {
                self.keyword("null")?;
                Ok(Value::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected character {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn boolean(&mut self) -> Result<Value, Error> {
        if self.peek() == Some(b't') {
            self.keyword("true")?;
            Ok(Value::Bool(true))
        } else {
            self.keyword("false")?;
            Ok(Value::Bool(false))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad float `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("bad integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad integer `{text}`: {e}")))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_value() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("fifo \"q\"".into())),
            ("n".into(), Value::U64(42)),
            ("x".into(), Value::F64(2.5)),
            ("neg".into(), Value::I64(-3)),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("seq".into(), Value::Seq(vec![Value::U64(1), Value::U64(2)])),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }
}
