//! Vendored minimal `criterion`: enough API surface to compile and run this
//! workspace's benches offline. Measures mean wall time over a fixed sample
//! count and prints one line per benchmark; no statistics, plots or HTML.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.text), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.text),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `f`, one sample per configured iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let t0 = Instant::now();
        black_box(f());
        self.samples.push(t0.elapsed());
    }
}

fn run_bench(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
    };
    for _ in 0..samples.max(1) {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().unwrap();
    println!(
        "{name:<50} mean {mean:>12?}   min {min:>12?}   ({} samples)",
        b.samples.len()
    );
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
