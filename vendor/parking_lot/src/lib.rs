//! Vendored minimal `parking_lot` facade over `std::sync`.
//!
//! Provides the API subset this workspace uses: `Mutex` whose `lock()`
//! returns the guard directly (no poisoning result), `Condvar` operating on
//! that guard, and `MutexGuard::unlocked` for temporarily releasing a lock.
//! Poisoning is transparently ignored, matching parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with parking_lot's panic-tolerant API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            lock: &self.inner,
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard of a [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a sync::Mutex<T>,
    /// `None` only transiently inside [`unlocked`](Self::unlocked) and
    /// [`Condvar::wait`].
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Temporarily releases the lock while running `f`, then re-acquires.
    pub fn unlocked<U>(guard: &mut MutexGuard<'a, T>, f: impl FnOnce() -> U) -> U {
        guard.inner = None;
        let out = f();
        guard.inner = Some(
            guard
                .lock
                .lock()
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
        out
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is locked")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard is locked")
    }
}

/// A condition variable operating on [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard is locked");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_unlocked_round_trip() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
            let out = MutexGuard::unlocked(&mut g, || 40);
            *g += out;
        }
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_a_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
