//! Vendored minimal `toml`: TOML text ⇄ the vendored `serde::Value` model.
//!
//! Supports the subset the workspace's scenario specs need: nested tables
//! (`[a.b]`), arrays of tables (`[[a.b]]`), inline scalars/arrays/tables,
//! basic strings, integers, floats, and booleans. `None` fields are omitted
//! on write (TOML has no null) and read back as missing keys, which the
//! serde layer maps to `Option::None`.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` (which must lower to a map) to TOML text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_value();
    let Value::Map(entries) = &v else {
        return Err(Error(format!(
            "TOML documents must be maps at the top level, found {}",
            v.kind()
        )));
    };
    let mut out = String::new();
    write_table(entries, &mut out, &mut Vec::new());
    Ok(out)
}

/// Parses TOML text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_document(s)?;
    Ok(T::from_value(&v)?)
}

fn is_scalar(v: &Value) -> bool {
    !matches!(v, Value::Map(_))
}

fn write_table(entries: &[(String, Value)], out: &mut String, path: &mut Vec<String>) {
    // Scalars and arrays first, then sub-tables, per TOML's layout rules.
    for (k, v) in entries {
        if matches!(v, Value::Null) {
            continue; // omitted; reads back as Option::None
        }
        if is_scalar(v) && !is_array_of_tables(v) {
            out.push_str(&format!("{} = ", key_str(k)));
            write_inline(v, out);
            out.push('\n');
        }
    }
    for (k, v) in entries {
        match v {
            Value::Map(sub) => {
                path.push(k.clone());
                out.push_str(&format!("\n[{}]\n", path_str(path)));
                write_table(sub, out, path);
                path.pop();
            }
            Value::Seq(items) if is_array_of_tables(v) => {
                for item in items {
                    if let Value::Map(sub) = item {
                        path.push(k.clone());
                        out.push_str(&format!("\n[[{}]]\n", path_str(path)));
                        write_table(sub, out, path);
                        path.pop();
                    }
                }
            }
            _ => {}
        }
    }
}

fn is_array_of_tables(v: &Value) -> bool {
    matches!(v, Value::Seq(items) if items.iter().any(|i| matches!(i, Value::Map(_))))
}

fn key_str(k: &str) -> String {
    let bare = !k.is_empty()
        && k.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        k.to_string()
    } else {
        let mut s = String::from("\"");
        for c in k.chars() {
            match c {
                '"' => s.push_str("\\\""),
                '\\' => s.push_str("\\\\"),
                c => s.push(c),
            }
        }
        s.push('"');
        s
    }
}

fn path_str(path: &[String]) -> String {
    path.iter()
        .map(|p| key_str(p))
        .collect::<Vec<_>>()
        .join(".")
}

fn write_inline(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("\"\""), // unreachable from write_table
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&format!("{x:?}")),
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{} = ", key_str(k)));
                write_inline(val, out);
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing

fn parse_document(s: &str) -> Result<Value, Error> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // The table path currently being filled ([] = root).
    let mut current: Vec<String> = Vec::new();
    for (lineno, raw) in s.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| Error(format!("line {}: {msg}", lineno + 1));
        if let Some(rest) = line.strip_prefix("[[") {
            let inner = rest
                .strip_suffix("]]")
                .ok_or_else(|| err("unterminated [[table]]"))?;
            current = parse_path(inner).map_err(|e| err(&e))?;
            push_array_table(&mut root, &current).map_err(|e| err(&e))?;
        } else if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| err("unterminated [table]"))?;
            current = parse_path(inner).map_err(|e| err(&e))?;
            ensure_table(&mut root, &current).map_err(|e| err(&e))?;
        } else {
            let eq = find_top_level_eq(line).ok_or_else(|| err("expected key = value"))?;
            let key = parse_key(line[..eq].trim()).map_err(|e| err(&e))?;
            let mut vp = ValParser {
                bytes: line[eq + 1..].trim().as_bytes(),
                pos: 0,
            };
            let val = vp.value().map_err(|e| err(&e))?;
            vp.skip_ws();
            if vp.pos != vp.bytes.len() {
                return Err(err("trailing characters after value"));
            }
            let table = navigate(&mut root, &current).map_err(|e| err(&e))?;
            if table.iter().any(|(k, _)| *k == key) {
                return Err(err(&format!("duplicate key `{key}`")));
            }
            table.push((key, val));
        }
    }
    Ok(Value::Map(root))
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_key(s: &str) -> Result<String, String> {
    if let Some(rest) = s.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| "unterminated quoted key".to_string())?;
        Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
    } else if !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(s.to_string())
    } else {
        Err(format!("bad key `{s}`"))
    }
}

fn parse_path(s: &str) -> Result<Vec<String>, String> {
    // Split on dots outside quotes.
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '.' if !in_str => {
                parts.push(parse_key(cur.trim())?);
                cur.clear();
            }
            c => cur.push(c),
        }
    }
    parts.push(parse_key(cur.trim())?);
    Ok(parts)
}

/// Walks to (creating as needed) the table at `path`; for paths ending in an
/// array of tables, returns the last element.
fn navigate<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
) -> Result<&'a mut Vec<(String, Value)>, String> {
    let mut table = root;
    for part in path {
        if !table.iter().any(|(k, _)| k == part) {
            table.push((part.clone(), Value::Map(Vec::new())));
        }
        let idx = table.iter().position(|(k, _)| k == part).unwrap();
        table = match &mut table[idx].1 {
            Value::Map(m) => m,
            Value::Seq(items) => match items.last_mut() {
                Some(Value::Map(m)) => m,
                _ => return Err(format!("`{part}` is not a table")),
            },
            _ => return Err(format!("`{part}` is not a table")),
        };
    }
    Ok(table)
}

fn ensure_table(root: &mut Vec<(String, Value)>, path: &[String]) -> Result<(), String> {
    navigate(root, path).map(|_| ())
}

fn push_array_table(root: &mut Vec<(String, Value)>, path: &[String]) -> Result<(), String> {
    let (last, parents) = path.split_last().ok_or("empty table path")?;
    let parent = navigate(root, parents)?;
    if !parent.iter().any(|(k, _)| k == last) {
        parent.push((last.clone(), Value::Seq(Vec::new())));
    }
    let idx = parent.iter().position(|(k, _)| k == last).unwrap();
    match &mut parent[idx].1 {
        Value::Seq(items) => {
            items.push(Value::Map(Vec::new()));
            Ok(())
        }
        _ => Err(format!("`{last}` is not an array of tables")),
    }
}

struct ValParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ValParser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.inline_table(),
            Some(b't') | Some(b'f') => self.boolean(),
            Some(c) if c == b'-' || c == b'+' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn boolean(&mut self) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(Value::Bool(true))
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(Value::Bool(false))
        } else {
            Err("bad boolean".into())
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .replace('_', "");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| format!("bad float `{text}`: {e}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| format!("bad integer `{text}`: {e}"))
        } else {
            text.trim_start_matches('+')
                .parse::<u64>()
                .map(Value::U64)
                .map_err(|e| format!("bad integer `{text}`: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.pos += 1; // [
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Value, String> {
        self.pos += 1; // {
        let mut entries = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Map(entries));
            }
            // Key: bare or quoted, up to `=`.
            let key = if self.peek() == Some(b'"') {
                self.string()?
            } else {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .unwrap()
                    .to_string()
            };
            self.skip_ws();
            if self.peek() != Some(b'=') {
                return Err("expected `=` in inline table".into());
            }
            self.pos += 1;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_tables_round_trip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("CATA".into())),
            ("fast".into(), Value::U64(16)),
            ("alpha".into(), Value::F64(1.0)),
            ("trace".into(), Value::Bool(false)),
            ("skip".into(), Value::Null),
            (
                "machine".into(),
                Value::Map(vec![
                    ("cores".into(), Value::U64(32)),
                    (
                        "fast_level".into(),
                        Value::Map(vec![("mhz".into(), Value::U64(2000))]),
                    ),
                ]),
            ),
            (
                "counts".into(),
                Value::Seq(vec![Value::U64(8), Value::U64(16)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back = parse_document(&text).unwrap();
        // The writer groups scalars before tables, so compare by key, not
        // by document order. `skip` was Null and is omitted.
        assert_eq!(back.get("name"), v.get("name"));
        assert_eq!(back.get("fast"), v.get("fast"));
        assert_eq!(back.get("alpha"), v.get("alpha"));
        assert_eq!(back.get("trace"), v.get("trace"));
        assert_eq!(back.get("skip"), None);
        assert_eq!(back.get("counts"), v.get("counts"));
        let m = back.get("machine").unwrap();
        assert_eq!(m.get("cores"), Some(&Value::U64(32)));
        assert_eq!(
            m.get("fast_level").unwrap().get("mhz"),
            Some(&Value::U64(2000))
        );
    }

    #[test]
    fn single_entry_variant_maps_parse() {
        let text = "[workload.Parsec]\nbench = \"Dedup\"\nscale = \"Tiny\"\nseed = 42\n";
        let v = parse_document(text).unwrap();
        assert_eq!(
            v.get("workload")
                .unwrap()
                .get("Parsec")
                .unwrap()
                .get("seed"),
            Some(&Value::U64(42))
        );
    }
}
