//! Vendored minimal `rand`: the subset this workspace uses — `StdRng`
//! seeded via `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen_range` / `gen` / `gen_bool`.
//!
//! `StdRng` is xoshiro256** seeded through splitmix64. The streams do not
//! match crates.io `rand`; every consumer in this workspace only requires
//! determinism for a fixed seed, which this guarantees (the generator is
//! fully specified here and has no platform dependence).
//!
//! `SampleRange` is implemented with a single blanket impl over
//! [`SampleUniform`] types, mirroring crates.io rand — type inference in
//! expressions like `v[rng.gen_range(0..3)]` depends on that shape.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// A type seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A sample of the standard distribution of `T` (uniform for integers,
    /// `[0, 1)` for floats).
    fn gen<T: StandardDist>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Converts a random word into a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[start, end)` (or `[start, end]` when
    /// `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = (end as u128)
                    .wrapping_sub(start as u128)
                    .wrapping_add(u128::from(inclusive));
                if span == 0 {
                    return rng.next_u64() as $t; // full-width inclusive range
                }
                let off = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(off) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = (end as i128 - start as i128 + i128::from(inclusive)) as u128;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                _inclusive: bool,
            ) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty range");
        T::sample_in(rng, start, end, true)
    }
}

/// The "standard" distribution of a type.
pub trait StandardDist: Sized {
    /// Draws one sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardDist for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl StandardDist for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDist for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardDist for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Stream selector folded into every seed. The workload calibration
    /// assertions in `tests/paper_shapes.rs` were validated against this
    /// stream; changing it re-rolls every generated workload.
    const STREAM: u64 = 3;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed.wrapping_add(STREAM);
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(5u32..=5);
            assert_eq!(z, 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_results_index_slices() {
        // Regression: type inference must flow from the indexing context
        // into the range's integer literals, like crates.io rand.
        let mut rng = StdRng::seed_from_u64(3);
        let v = [10, 20, 30];
        let x = v[rng.gen_range(0..3)];
        assert!(v.contains(&x));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
