//! Vendored minimal `serde` facade.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of serde this workspace actually uses: the
//! `Serialize`/`Deserialize` traits, the same-named derive macros
//! (re-exported from the vendored `serde_derive` proc-macro crate), and a
//! self-describing [`Value`] data model the derives target. `serde_json`
//! and `toml` (also vendored) serialize any `Serialize` type through this
//! model.
//!
//! The wire conventions match real serde's externally-tagged defaults:
//! named structs become maps, newtype structs are transparent, unit enum
//! variants are strings, and data-carrying variants become
//! `{ "Variant": ... }` single-entry maps.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The self-describing data model every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent/None.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key→value map with stable insertion order (field order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, or a type error naming `ty`.
    pub fn as_map_for(&self, ty: &str) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(DeError::new(format!(
                "{ty}: expected a map, found {}",
                other.kind()
            ))),
        }
    }

    /// The sequence elements, or a type error naming `ty`.
    pub fn as_seq_for(&self, ty: &str) -> Result<&[Value], DeError> {
        match self {
            Value::Seq(s) => Ok(s),
            other => Err(DeError::new(format!(
                "{ty}: expected a sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up a map key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can lower itself into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up `key` in a struct map and deserializes it; missing keys
/// deserialize from [`Value::Null`] so `Option` fields may be omitted.
pub fn field<T: Deserialize>(map: &[(String, Value)], key: &str, ty: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("{ty}.{key}: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::new(format!("{ty}: missing field `{key}`"))),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range"))),
                    other => Err(DeError::new(format!(
                        "expected an integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range"))),
                    other => Err(DeError::new(format!(
                        "expected an integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(DeError::new(format!(
                        "expected a number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected a bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!(
                "expected a one-char string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq_for("Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_seq_for("tuple")?;
        if s.len() != 2 {
            return Err(DeError::new(format!(
                "expected 2 elements, got {}",
                s.len()
            )));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_seq_for("tuple")?;
        if s.len() != 3 {
            return Err(DeError::new(format!(
                "expected 3 elements, got {}",
                s.len()
            )));
        }
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map_for("BTreeMap")?;
        m.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<u64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u64).to_value(), Value::U64(3));
    }

    #[test]
    fn missing_fields_only_allowed_for_options() {
        let m: Vec<(String, Value)> = vec![];
        let opt: Option<u64> = field(&m, "x", "T").unwrap();
        assert_eq!(opt, None);
        assert!(field::<u64>(&m, "x", "T").is_err());
    }
}
