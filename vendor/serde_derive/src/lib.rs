//! Vendored `serde_derive`: `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! without syn/quote (neither is available offline). The item token stream is
//! parsed by hand into a small shape description, and the impls are emitted
//! as strings targeting the vendored `serde` crate's `Value` data model.
//!
//! Supported shapes — everything this workspace derives on:
//! named-field structs, tuple structs (newtype and wider), unit structs,
//! and enums with unit, tuple, and struct variants. Generic types and
//! `#[serde(...)]` attributes are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

#[derive(Debug)]
enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(it: &mut Tokens) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // The bracketed attribute body.
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("expected attribute body, found {other:?}"),
                }
            }
            _ => return,
        }
    }
}

fn skip_visibility(it: &mut Tokens) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

fn expect_ident(it: &mut Tokens, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected {what}, found {other:?}"),
    }
}

/// Counts top-level comma-separated segments in a field list, tracking
/// angle-bracket depth so `BTreeMap<K, V>` style types don't split.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut seen_any = false;
    for tt in group.stream() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    seen_any = false;
                    continue;
                }
                _ => {}
            }
        }
        seen_any = true;
    }
    if seen_any {
        fields += 1;
    }
    fields
}

/// Extracts field names from a `{ ... }` named-field group.
fn named_field_names(group: &proc_macro::Group) -> Vec<String> {
    let mut it: Tokens = group.stream().into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attributes(&mut it);
        if it.peek().is_none() {
            break;
        }
        skip_visibility(&mut it);
        let name = expect_ident(&mut it, "field name");
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        names.push(name);
        // Consume the type up to the next top-level comma.
        let mut depth = 0i32;
        loop {
            match it.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        it.next();
                        break;
                    }
                    it.next();
                }
                Some(_) => {
                    it.next();
                }
            }
        }
    }
    names
}

fn parse_item(input: TokenStream) -> Item {
    let mut it: Tokens = input.into_iter().peekable();
    skip_attributes(&mut it);
    skip_visibility(&mut it);
    let kw = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "type name");
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic type `{name}` is not supported");
        }
    }
    match kw.as_str() {
        "struct" => {
            let shape = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(named_field_names(&g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(&g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("unexpected struct body: {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("expected enum body, found {other:?}"),
            };
            let mut vit: Tokens = body.stream().into_iter().peekable();
            let mut variants = Vec::new();
            loop {
                skip_attributes(&mut vit);
                if vit.peek().is_none() {
                    break;
                }
                let vname = expect_ident(&mut vit, "variant name");
                let shape = match vit.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let g = g.clone();
                        vit.next();
                        Shape::Named(named_field_names(&g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let g = g.clone();
                        vit.next();
                        Shape::Tuple(count_tuple_fields(&g))
                    }
                    _ => Shape::Unit,
                };
                // Skip an optional discriminant, then the trailing comma.
                loop {
                    match vit.peek() {
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                            vit.next();
                            break;
                        }
                        None => break,
                        _ => {
                            vit.next();
                        }
                    }
                }
                variants.push(Variant { name: vname, shape });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde derive supports only structs and enums, found `{other}`"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                }
                Shape::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
                }
            };
            write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
            .unwrap();
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        writeln!(
                            arms,
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        )
                        .unwrap();
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                        };
                        writeln!(
                            arms,
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),",
                            binds.join(", ")
                        )
                        .unwrap();
                    }
                    Shape::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        writeln!(
                            arms,
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                            fields.join(", "),
                            entries.join(", ")
                        )
                        .unwrap();
                    }
                }
            }
            write!(
                out,
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 #[allow(unreachable_patterns)]\n\
                 match self {{\n{arms}\n}}\n}}\n}}"
            )
            .unwrap();
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("let _ = v; Ok({name})"),
                Shape::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                        .collect();
                    format!(
                        "let s = v.as_seq_for(\"{name}\")?;\n\
                         if s.len() != {n} {{ return Err(::serde::DeError::new(format!(\"{name}: expected {n} elements, got {{}}\", s.len()))); }}\n\
                         Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(m, \"{f}\", \"{name}\")?"))
                        .collect();
                    format!(
                        "let m = v.as_map_for(\"{name}\")?;\nOk({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
            )
            .unwrap();
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        writeln!(unit_arms, "\"{vn}\" => Ok({name}::{vn}),").unwrap();
                    }
                    Shape::Tuple(n) => {
                        if *n == 1 {
                            writeln!(
                                data_arms,
                                "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                            )
                            .unwrap();
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                                .collect();
                            write!(
                                data_arms,
                                "\"{vn}\" => {{\n\
                                 let s = inner.as_seq_for(\"{name}::{vn}\")?;\n\
                                 if s.len() != {n} {{ return Err(::serde::DeError::new(format!(\"{name}::{vn}: expected {n} elements, got {{}}\", s.len()))); }}\n\
                                 Ok({name}::{vn}({}))\n}},\n",
                                elems.join(", ")
                            )
                            .unwrap();
                        }
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(m, \"{f}\", \"{name}::{vn}\")?"))
                            .collect();
                        write!(
                            data_arms,
                            "\"{vn}\" => {{\n\
                             let m = inner.as_map_for(\"{name}::{vn}\")?;\n\
                             Ok({name}::{vn} {{ {} }})\n}},\n",
                            inits.join(", ")
                        )
                        .unwrap();
                    }
                }
            }
            write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::DeError::new(format!(\"{name}: unknown variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = &m[0];\n\
                 #[allow(unused_variables)]\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(::serde::DeError::new(format!(\"{name}: unknown variant `{{other}}`\"))),\n}}\n}},\n\
                 other => Err(::serde::DeError::new(format!(\"{name}: expected a variant string or single-entry map, found {{}}\", other.kind()))),\n\
                 }}\n}}\n}}"
            )
            .unwrap();
        }
    }
    out
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
