//! Vendored minimal `proptest`: the macro surface and strategy combinators
//! this workspace's property tests use, without shrinking. Failing cases
//! panic directly with the generated inputs' case number; the generator is
//! deterministic per test (seeded from the test's module path), so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The deterministic generator driving one test.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded from the test's fully qualified name.
    pub fn for_test(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng {
            inner: StdRng::seed_from_u64(h.finish() ^ 0x5EED_CA7A_2016_0000),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy producing any value of `T`'s full domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a full-domain generator.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Always-the-same-value strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$i:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
);

/// Combinator namespace mirroring proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// A size argument: an exact count or a range of counts.
        pub trait IntoSizeRange {
            /// Lower/upper(exclusive) bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        /// Strategy generating a `Vec` of `elem`-generated values.
        pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            assert!(min < max, "empty size range");
            VecStrategy { elem, min, max }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = if self.min + 1 == self.max {
                    self.min
                } else {
                    rng.gen_range(self.min..self.max)
                };
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts inside a property test (panics with the case inputs in scope).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let ($($arg,)+) = (
                        $( $crate::Strategy::generate(&($strat), &mut __rng), )+
                    );
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ::core::default::Default::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn custom() -> impl Strategy<Value = (usize, f64)> {
        (1usize..5, 0.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((n, p) in custom(), flag in any::<bool>()) {
            prop_assert!((1..5).contains(&n));
            prop_assert!((0.0..1.0).contains(&p));
            let _ = flag;
        }

        #[test]
        fn vectors_respect_sizes(
            v in prop::collection::vec(0u64..10, 0..7),
            exact in prop::collection::vec(any::<bool>(), 4),
        ) {
            prop_assert!(v.len() < 7);
            prop_assert_eq!(exact.len(), 4);
            for x in v {
                prop_assert!(x < 10);
            }
        }
    }
}
