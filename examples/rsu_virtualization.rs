//! RSU virtualization (§III-B-3): two applications sharing the unit across
//! OS context switches.
//!
//! The OS saves the outgoing thread's criticality from the RSU into its
//! `thread_struct`, writes NoTask so the budget can be re-distributed, and
//! restores the value when the thread is rescheduled — so a critical task
//! keeps winning the budget wherever it lands.
//!
//! ```text
//! cargo run --release --example rsu_virtualization
//! ```

use cata_rsu::engine::TaskCrit;
use cata_rsu::unit::{Rsu, RsuConfig};
use cata_rsu::virt::{preempt, resume, ThreadStruct};
use cata_sim::time::Frequency;

fn show(rsu: &Rsu, what: &str) {
    let e = rsu.engine();
    let states: Vec<String> = (0..4)
        .map(|c| {
            let crit = match e.crit(c) {
                TaskCrit::NoTask => "-",
                TaskCrit::NonCritical => "n",
                TaskCrit::Critical => "C",
            };
            let acc = if e.is_accelerated(c) { "fast" } else { "slow" };
            format!("core{c}[{crit},{acc}]")
        })
        .collect();
    println!("{what:<42} {}", states.join(" "));
}

fn main() {
    let f = Frequency::from_ghz(1);
    // A 4-core machine with budget for a single fast core.
    let mut rsu = Rsu::init(RsuConfig {
        num_cores: 4,
        budget: 1,
        ..RsuConfig::paper_default(1)
    });

    println!("RSU with 4 cores, power budget 1\n");

    // Application A runs a critical task on core 0; it wins the budget.
    rsu.start_task(0, true, f).unwrap();
    show(&rsu, "A: critical task starts on core 0");

    // Application B runs a non-critical task on core 1; no budget left.
    rsu.start_task(1, false, f).unwrap();
    show(&rsu, "B: non-critical task starts on core 1");

    // The OS preempts A's thread (timeslice). Criticality is saved.
    let mut thread_a = ThreadStruct::default();
    let cmds = preempt(&mut rsu, 0, &mut thread_a, f).unwrap();
    show(&rsu, &format!("OS preempts A (cmds: {cmds:?})"));

    // With A off-core, core 0 still holds the budget marked NoTask; when B
    // spawns another worker on core 2, the engine can displace it…
    rsu.start_task(2, false, f).unwrap();
    show(&rsu, "B: second non-critical task on core 2");

    // …but when A's thread resumes on core 3, its restored criticality
    // reclaims the fast rail immediately.
    let cmds = resume(&mut rsu, 3, &thread_a, f).unwrap();
    show(&rsu, &format!("OS resumes A on core 3 (cmds: {cmds:?})"));

    // A's task completes; the budget is free for whoever needs it next.
    rsu.end_task(3, f).unwrap();
    rsu.core_idle(3, f).unwrap();
    show(&rsu, "A: task ends, core 3 idles");

    println!(
        "\nRSU storage for this unit: {} bits",
        cata_rsu::overhead::storage_bits(4, 2)
    );
}
