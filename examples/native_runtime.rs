//! The native executor: real threads, real closures, real (or mock) DVFS.
//!
//! Act 1 — the facade: the *same* `Scenario` runs on the simulator and on
//! the native thread-pool runtime through the one `Executor` call shape;
//! only the backend changes.
//!
//! Act 2 — the lower-level library API a downstream user adopts directly:
//! spawn dependent tasks with criticality annotations and OmpSs-style
//! region accesses, and let the runtime apply the CATA algorithm through a
//! cpufreq backend. On a Linux host whose cores expose a writable
//! `scaling_setspeed` (userspace governor), the runtime drives the real
//! sysfs files; everywhere else a recording mock keeps the example running.
//!
//! ```text
//! cargo run --release --example native_runtime
//! ```

use cata_core::exp::{Executor, NativeExecutor, Scenario, WorkloadSpec};
use cata_core::native::{NativeRuntime, RsmMode};
use cata_core::SimExecutor;
use cata_cpufreq::backend::{DvfsBackend, MockDvfs, SysfsDvfs};
use cata_tdg::deps::{AccessMode, RegionId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn busy_work(iters: u64) -> u64 {
    // Real CPU work so acceleration would matter on real hardware.
    let mut x = 0x9E3779B97F4A7C15u64;
    for _ in 0..iters {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

fn main() {
    // Act 1: one scenario, two executors.
    let scenario = Scenario::preset(
        "CATA+RSU",
        2,
        WorkloadSpec::ForkJoin {
            waves: 3,
            width: 12,
            cycles: 2_000_000,
        },
    )
    .expect("paper preset");
    let mut scenario = scenario;
    scenario.spec_mut().machine = cata_sim::machine::MachineConfig::small_test(4);

    let sim_report = SimExecutor::default().execute(&scenario).expect("sim run");
    let native_report = NativeExecutor::new()
        .max_workers(4)
        .execute(&scenario)
        .expect("native run");
    println!("one scenario, two backends:");
    println!("  sim:    {}", sim_report.summary());
    println!("  native: {}", native_report.summary());

    // Act 2: the runtime as a library, with region-derived dependences.
    let workers = 4;
    let (backend, kind): (Arc<dyn DvfsBackend>, &str) = match SysfsDvfs::detect(workers) {
        Some(real) => (Arc::new(real), "sysfs (real cpufreq!)"),
        None => (
            Arc::new(MockDvfs::new(workers, 1_000_000)),
            "mock (no cpufreq permission)",
        ),
    };
    println!("\nDVFS backend: {kind}");

    let rt = NativeRuntime::builder(workers)
        .budget(2)
        .rsm_mode(RsmMode::RsuEmulated)
        .backend(backend)
        .build();

    // A small pipeline: produce → (critical) transform chain + side work →
    // reduce, with dependences derived from data regions, OmpSs style.
    let data = RegionId(1);
    let accum = Arc::new(AtomicU64::new(0));

    let a = Arc::clone(&accum);
    rt.spawn_with_accesses(false, &[(data, AccessMode::Out)], move || {
        a.fetch_add(busy_work(200_000) & 0xFF, Ordering::Relaxed);
    });

    for _ in 0..3 {
        let a = Arc::clone(&accum);
        // Critical chain: each step rewrites the shared region.
        rt.spawn_with_accesses(true, &[(data, AccessMode::InOut)], move || {
            a.fetch_add(busy_work(800_000) & 0xFF, Ordering::Relaxed);
        });
    }

    for i in 0..8 {
        let a = Arc::clone(&accum);
        let region = RegionId(100 + i);
        rt.spawn_with_accesses(false, &[(region, AccessMode::Out)], move || {
            a.fetch_add(busy_work(300_000) & 0xFF, Ordering::Relaxed);
        });
    }

    let a = Arc::clone(&accum);
    rt.spawn_with_accesses(false, &[(data, AccessMode::In)], move || {
        a.fetch_add(busy_work(100_000) & 0xFF, Ordering::Relaxed);
    });

    rt.wait_all();
    let m = rt.metrics();
    println!(
        "ran {} tasks; {} DVFS writes ({} failed), {} denied accelerations, {} ns under the RSM lock",
        m.tasks_run, m.reconfigs, m.reconfig_failures, m.accel_denied, m.rsm_lock_ns
    );
    println!(
        "accumulator (keeps the optimizer honest): {}",
        accum.load(Ordering::Relaxed)
    );
}
