//! A fluidanimate-style stencil: the worst case for dynamic bottom-level
//! estimation and for the software reconfiguration path.
//!
//! The stencil TDG gives every interior task nine parents. That makes the
//! CATS+BL ancestor walk expensive (the paper measures up to a 9.8 %
//! *slowdown*), and the per-phase dependence fronts make reconfigurations
//! bursty, which the serialized software path turns into millisecond lock
//! waits (§V-C) — the RSU's reason to exist. This example measures both
//! effects directly.
//!
//! ```text
//! cargo run --release --example stencil_app
//! ```

use cata_core::{RunConfig, SimExecutor};
use cata_workloads::{generate, Benchmark, Scale};

fn main() {
    let graph = generate(Benchmark::Fluidanimate, Scale::Small, 7);
    let stats = graph.stats();
    println!(
        "stencil: {} tasks, {} edges, depth {}, max parents {} (paper: up to 9)",
        stats.tasks, stats.edges, stats.depth, stats.max_preds
    );

    let fast = 16;
    let fifo = SimExecutor::new(RunConfig::fifo(fast)).run(&graph, "stencil").0;

    // 1. The BL-vs-SA estimation cost.
    let bl = SimExecutor::new(RunConfig::cats_bl(fast)).run(&graph, "stencil").0;
    let sa = SimExecutor::new(RunConfig::cats_sa(fast)).run(&graph, "stencil").0;
    println!("\ncriticality estimation on a dense TDG:");
    println!(
        "  CATS+BL: speedup {:.3} (ancestor walks delay task submission)",
        bl.speedup_over(&fifo)
    );
    println!("  CATS+SA: speedup {:.3} (annotations are free)", sa.speedup_over(&fifo));

    // 2. The software-path contention, and what the RSU buys.
    let sw = SimExecutor::new(RunConfig::cata(fast)).run(&graph, "stencil").0;
    let hw = SimExecutor::new(RunConfig::cata_rsu(fast)).run(&graph, "stencil").0;
    println!("\nreconfiguration path under bursty stencil fronts:");
    println!(
        "  CATA (software): speedup {:.3}, {} reconfigs, max lock wait {}, overhead {:.2}%",
        sw.speedup_over(&fifo),
        sw.counters.reconfigs_applied,
        sw.lock_waits.max(),
        sw.reconfig_time_share * 100.0
    );
    println!(
        "  CATA+RSU:        speedup {:.3}, {} reconfigs, no locks",
        hw.speedup_over(&fifo),
        hw.counters.reconfigs_applied
    );
    println!(
        "  RSU gain over software CATA: {:.1}%",
        (hw.speedup_over(&sw) - 1.0) * 100.0
    );
}
