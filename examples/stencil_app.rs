//! A fluidanimate-style stencil: the worst case for dynamic bottom-level
//! estimation and for the software reconfiguration path.
//!
//! The stencil TDG gives every interior task nine parents. That makes the
//! CATS+BL ancestor walk expensive (the paper measures up to a 9.8 %
//! *slowdown*), and the per-phase dependence fronts make reconfigurations
//! bursty, which the serialized software path turns into millisecond lock
//! waits (§V-C) — the RSU's reason to exist. This example measures both
//! effects directly, with every run described by a preset scenario.
//!
//! ```text
//! cargo run --release --example stencil_app
//! ```

use cata_core::exp::{Scenario, WorkloadSpec};
use cata_core::SimExecutor;
use cata_workloads::{Benchmark, Scale};

fn main() {
    let workload = WorkloadSpec::parsec(Benchmark::Fluidanimate, Scale::Small, 7);
    let stats = workload.build_graph().stats();
    println!(
        "stencil: {} tasks, {} edges, depth {}, max parents {} (paper: up to 9)",
        stats.tasks, stats.edges, stats.depth, stats.max_preds
    );

    let fast = 16;
    let exec = SimExecutor::default();
    let run = |label: &str| {
        Scenario::preset(label, fast, workload.clone())
            .expect("paper preset")
            .run(&exec)
            .expect("scenario run")
    };
    let fifo = run("FIFO");

    // 1. The BL-vs-SA estimation cost.
    let bl = run("CATS+BL");
    let sa = run("CATS+SA");
    println!("\ncriticality estimation on a dense TDG:");
    println!(
        "  CATS+BL: speedup {:.3} (ancestor walks delay task submission)",
        bl.speedup_over(&fifo)
    );
    println!(
        "  CATS+SA: speedup {:.3} (annotations are free)",
        sa.speedup_over(&fifo)
    );

    // 2. The software-path contention, and what the RSU buys.
    let sw = run("CATA");
    let hw = run("CATA+RSU");
    println!("\nreconfiguration path under bursty stencil fronts:");
    println!(
        "  CATA (software): speedup {:.3}, {} reconfigs, max lock wait {}, overhead {:.2}%",
        sw.speedup_over(&fifo),
        sw.counters.reconfigs_applied,
        sw.lock_waits.max(),
        sw.reconfig_time_share * 100.0
    );
    println!(
        "  CATA+RSU:        speedup {:.3}, {} reconfigs, no locks",
        hw.speedup_over(&fifo),
        hw.counters.reconfigs_applied
    );
    println!(
        "  RSU gain over software CATA: {:.1}%",
        (hw.speedup_over(&sw) - 1.0) * 100.0
    );
}
