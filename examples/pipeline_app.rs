//! A dedup-style pipeline under all six paper configurations, run as one
//! parallel `Suite` through the experiment facade.
//!
//! Pipelines are where criticality pays: the serial write chain sits on the
//! critical path, and schedulers that know it (CATS/CATA) keep it on fast
//! silicon. This example fans the six-config comparison across worker
//! threads, prints the comparison the paper's figures make, then replays a
//! traced CATA+RSU scenario to show a criticality-driven displacement.
//!
//! ```text
//! cargo run --release --example pipeline_app
//! ```

use cata_core::exp::{Scenario, ScenarioSpec, Suite, WorkloadSpec};
use cata_core::SimExecutor;
use cata_sim::trace::TraceEvent;
use cata_workloads::{Benchmark, Scale};

fn main() {
    let workload = WorkloadSpec::parsec(Benchmark::Dedup, Scale::Small, 42);
    let graph = workload.build_graph();
    println!(
        "dedup-like pipeline: {} tasks, depth {}, max parents {}",
        graph.num_tasks(),
        graph.stats().depth,
        graph.stats().max_preds
    );

    let fast = 8; // 8 fast cores / budget 8, the paper's tightest setting
    let exec = SimExecutor::default();

    // The whole comparison as one suite, fanned across 4 worker threads.
    // Deterministic per-run seeding makes this bit-identical to a serial
    // run.
    let suite = Suite::from_specs(ScenarioSpec::paper_matrix(fast, workload.clone())).jobs(4);
    let reports = suite.run_all(&exec);

    let baseline = &reports[0];
    println!(
        "\n{:<10} {:>12} {:>9} {:>9} {:>11}",
        "config", "time", "speedup", "EDP", "reconfigs"
    );
    for report in &reports {
        println!(
            "{:<10} {:>12} {:>9.3} {:>9.3} {:>11}",
            report.label,
            report.exec_time.to_string(),
            report.speedup_over(baseline),
            report.edp_normalized_to(baseline).unwrap_or(f64::NAN),
            report.counters.reconfigs_applied
        );
    }

    // Show the first criticality-driven displacement in a traced CATA run.
    let traced = Scenario::from_spec(
        ScenarioSpec::preset("CATA+RSU", fast, workload)
            .expect("paper preset")
            .with_trace(),
    );
    let (report, trace) = exec.run_scenario_traced(&traced).expect("traced run");
    println!(
        "\nCATA+RSU performed {} swaps (critical task displacing a non-critical one).",
        report.counters.accel_swaps
    );
    let mut shown = 0;
    for rec in trace.records() {
        if let TraceEvent::ReconfigApplied { core, level } = rec.event {
            println!("  {:>12}  {core} settles at {level}", rec.time.to_string());
            shown += 1;
            if shown >= 8 {
                break;
            }
        }
    }

    // And the schedule itself, Paraver style (first 8 cores).
    println!(
        "\nschedule (first 8 cores):\n{}",
        cata_core::gantt::render(
            &trace,
            8,
            cata_sim::time::SimTime::ZERO + report.exec_time,
            100
        )
    );
}
