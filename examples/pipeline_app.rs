//! A dedup-style pipeline under all six paper configurations.
//!
//! Pipelines are where criticality pays: the serial write chain sits on the
//! critical path, and schedulers that know it (CATS/CATA) keep it on fast
//! silicon. This example runs the dedup workload generator at small scale on
//! the full 32-core Table I machine and prints the comparison the paper's
//! figures make, plus a trace excerpt showing a criticality-driven
//! displacement.
//!
//! ```text
//! cargo run --release --example pipeline_app
//! ```

use cata_core::{RunConfig, SimExecutor};
use cata_sim::trace::TraceEvent;
use cata_workloads::{generate, Benchmark, Scale};

fn main() {
    let graph = generate(Benchmark::Dedup, Scale::Small, 42);
    println!(
        "dedup-like pipeline: {} tasks, depth {}, max parents {}",
        graph.num_tasks(),
        graph.stats().depth,
        graph.stats().max_preds
    );

    let fast = 8; // 8 fast cores / budget 8, the paper's tightest setting
    let mut baseline = None;
    println!("\n{:<10} {:>12} {:>9} {:>9} {:>11}", "config", "time", "speedup", "EDP", "reconfigs");
    for cfg in RunConfig::paper_matrix(fast) {
        let label = cfg.label.clone();
        let report = SimExecutor::new(cfg).run(&graph, "dedup").0;
        let (speedup, edp) = match &baseline {
            None => (1.0, 1.0),
            Some(b) => (report.speedup_over(b), report.edp_normalized_to(b)),
        };
        println!(
            "{:<10} {:>12} {:>9.3} {:>9.3} {:>11}",
            label,
            report.exec_time.to_string(),
            speedup,
            edp,
            report.counters.reconfigs_applied
        );
        if baseline.is_none() {
            baseline = Some(report);
        }
    }

    // Show the first criticality-driven displacement in a traced CATA run.
    let (report, trace) = SimExecutor::new(RunConfig::cata_rsu(fast).with_trace())
        .run(&graph, "dedup");
    println!(
        "\nCATA+RSU performed {} swaps (critical task displacing a non-critical one).",
        report.counters.accel_swaps
    );
    let mut shown = 0;
    for rec in trace.records() {
        if let TraceEvent::ReconfigApplied { core, level } = rec.event {
            println!("  {:>12}  {core} settles at {level}", rec.time.to_string());
            shown += 1;
            if shown >= 8 {
                break;
            }
        }
    }

    // And the schedule itself, Paraver style (first 8 cores).
    println!(
        "\nschedule (first 8 cores):\n{}",
        cata_core::gantt::render(
            &trace,
            8,
            cata_sim::time::SimTime::ZERO + report.exec_time,
            100
        )
    );
}
