//! Quickstart: build a task graph with criticality annotations, run it under
//! the baseline FIFO scheduler and under CATA+RSU, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cata_core::{RunConfig, SimExecutor};
use cata_sim::progress::ExecProfile;
use cata_tdg::TaskGraph;

fn main() {
    // A tiny application: a prepare stage fans out into worker tasks, one
    // "solver" chain is much longer than the rest — the critical path. The
    // programmer marks the solver type critical, exactly like
    // `#pragma omp task criticality(1)` in the paper.
    let mut g = TaskGraph::new();
    let prepare = g.add_type("prepare", 0);
    let solve = g.add_type("solve", 1); // criticality(1)
    let render = g.add_type("render", 0);

    let root = g.add_task(prepare, ExecProfile::new(200_000, 0), &[]);
    // The critical chain: four dependent solver steps of 3 ms each (at 1 GHz).
    let mut chain = root;
    for _ in 0..4 {
        chain = g.add_task(solve, ExecProfile::new(3_000_000, 200_000_000), &[chain]);
    }
    // Plenty of independent render work of 1 ms each.
    let renders: Vec<_> = (0..24)
        .map(|_| g.add_task(render, ExecProfile::new(1_000_000, 50_000_000), &[root]))
        .collect();
    let mut sink_deps = renders;
    sink_deps.push(chain);
    g.add_task(prepare, ExecProfile::new(100_000, 0), &sink_deps);

    println!(
        "graph: {} tasks, {} edges, depth {}",
        g.num_tasks(),
        g.num_edges(),
        g.stats().depth
    );

    // An 8-core machine with 2 fast cores (FIFO) / a 2-core power budget
    // (CATA+RSU).
    let fifo = SimExecutor::new(RunConfig::fifo(2).with_small_machine(8, 2))
        .run(&g, "quickstart")
        .0;
    let cata = SimExecutor::new(RunConfig::cata_rsu(2).with_small_machine(8, 2))
        .run(&g, "quickstart")
        .0;

    println!("\n{}", fifo.summary());
    println!("{}", cata.summary());
    println!(
        "\nCATA+RSU speedup over FIFO: {:.3}x   normalized EDP: {:.3}",
        cata.speedup_over(&fifo),
        cata.edp_normalized_to(&fifo)
    );
    println!(
        "reconfigurations applied: {}   accelerate-swaps: {}",
        cata.counters.reconfigs_applied, cata.counters.accel_swaps
    );
}
