//! Quickstart: describe a run with the `Scenario` builder, execute it
//! under the baseline FIFO scheduler and under CATA+RSU, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cata_core::exp::{Scenario, WorkloadSpec};
use cata_core::SimExecutor;
use cata_workloads::{Benchmark, Scale};

fn main() {
    // The dedup pipeline: a serial I/O chain sits on the critical path, so
    // criticality-aware scheduling pays. The workload spec is serializable,
    // so this exact run can be saved and replayed (`spec.to_json()` /
    // `repro run`).
    let workload = WorkloadSpec::parsec(Benchmark::Dedup, Scale::Tiny, 42);

    // The paper's Table I machine with 8 fast cores (FIFO) / an 8-core
    // power budget (CATA+RSU). Policies are referenced by registry key; the
    // six paper configurations are pre-registered, and `Scenario::preset`
    // is the shorthand for them.
    let exec = SimExecutor::default();
    let fifo = Scenario::builder("FIFO")
        .workload(workload.clone())
        .scheduler("fifo")
        .estimator("none")
        .accel("static-hetero")
        .fast_cores(8)
        .build()
        .run(&exec)
        .expect("fifo run");
    let cata = Scenario::builder("CATA+RSU")
        .workload(workload)
        .scheduler("cats-homogeneous")
        .estimator("static-annotations")
        .accel("rsu")
        .fast_cores(8)
        .build()
        .run(&exec)
        .expect("cata run");

    println!("{}", fifo.summary());
    println!("{}", cata.summary());
    println!(
        "\nCATA+RSU speedup over FIFO: {:.3}x   normalized EDP: {:.3}",
        cata.speedup_over(&fifo),
        cata.edp_normalized_to(&fifo).unwrap_or(f64::NAN)
    );
    println!(
        "reconfigurations applied: {}   accelerate-swaps: {}",
        cata.counters.reconfigs_applied, cata.counters.accel_swaps
    );
}
